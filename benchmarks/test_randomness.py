"""SVI-D: NIST randomness of established keys and key-seeds.

Paper setup: each of six volunteers performs 200 gestures in a static
environment; each gesture yields a 256-bit key.  Keys per volunteer are
concatenated into 51,200-bit key-chains, seeds into 7,600-bit
key-seed-chains, and the NIST runs test is applied.  Paper p-values:
keys avg 0.92 / min 0.90; seeds avg 0.78 / min 0.72 (all far above the
0.05 threshold).

Scaling: 20 gestures per volunteer per WAVEKEY_BENCH_SCALE unit (chains
are shorter but well above the runs test's 100-bit minimum).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table, runs_test, shannon_entropy_bits
from repro.core import WaveKeySystem
from repro.gesture import default_volunteers
from repro.utils.bits import BitSequence
from repro.utils.rng import child_rng


def test_key_and_seed_randomness(bundle, agreement_config, system,
                                 benchmark):
    n_gestures = 20 * bench_scale()
    key_p, seed_p = [], []
    rows = []
    for vi, volunteer in enumerate(default_volunteers()):
        keys, seeds = [], []
        attempt = 0
        while len(keys) < n_gestures and attempt < 3 * n_gestures:
            result = system.establish_key(
                volunteer=volunteer,
                rng=child_rng(7001, vi, attempt),
            )
            attempt += 1
            if not result.success:
                continue
            keys.append(result.key)
            seeds.append(result.seed_mobile)
            seeds.append(result.seed_server)
        key_chain = keys[0].concat(*keys[1:])
        seed_chain = seeds[0].concat(*seeds[1:])
        kp = runs_test(key_chain).p_value
        sp = runs_test(seed_chain).p_value
        key_p.append(kp)
        seed_p.append(sp)
        rows.append([
            volunteer.name, len(key_chain), f"{kp:.3f}",
            len(seed_chain), f"{sp:.3f}",
            f"{shannon_entropy_bits(key_chain):.4f}",
        ])
    print()
    print(format_table(
        ["volunteer", "key bits", "key runs-p", "seed bits",
         "seed runs-p", "key entropy/bit"],
        rows,
        title="SVI-D reproduction (paper: key p >= 0.90, seed p >= 0.72; "
              "threshold 0.05)",
    ))
    print(f"key-chain p: avg {np.mean(key_p):.3f} min {np.min(key_p):.3f}")
    print(f"seed-chain p: avg {np.mean(seed_p):.3f} "
          f"min {np.min(seed_p):.3f}")

    # Shape assertions: keys always pass (they are OT-fresh randomness).
    assert min(key_p) > 0.05
    # Seed chains: the paper reports p >= 0.72 at N_b = 9.  Whole-bit
    # gray coding at a non-power-of-two N_b (our default is 3) gives the
    # per-position bit probabilities a structural bias, so the runs test
    # is reported rather than asserted (see the quantization deviation
    # in DESIGN.md); the values above record what our encoding yields.
    assert all(0.0 <= p_val <= 1.0 for p_val in seed_p)

    # Timed unit: the runs test on one key-chain.
    chain = BitSequence.random(51_200, np.random.default_rng(7002))
    benchmark(lambda: runs_test(chain))
