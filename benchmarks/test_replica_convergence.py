"""Replication convergence and overhead benchmarks.

The replica tier's two operational claims, measured over real sockets
on a three-backend mesh (tiny bundles, pinned seeds, so protocol
compute is small and constant across arms):

* **revocation latency** — a revocation issued on one backend while
  establishment load runs must be rejected by *every* backend within
  two anti-entropy rounds (``2 * interval``).  In practice the eager
  all-peer push lands it in milliseconds; the two-round bound is the
  worst case the design guarantees when pushes are lost.
* **establishment overhead** — replication rides the grant path as one
  in-memory log append plus an off-thread push enqueue; sequential
  establishment throughput with replication on must stay within 10%
  of the same fleet with it off (plus a small absolute allowance for
  1-core scheduler jitter on short runs).

Scaling: throughput sessions multiply by ``WAVEKEY_BENCH_SCALE``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.access.store import KeyStore
from repro.analysis import format_table
from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.errors import TicketRevoked
from repro.net import NetClientConfig, WaveKeyNetClient, WaveKeyTCPServer
from repro.replica import Replicator
from repro.service import ServiceConfig, WaveKeyAccessServer
from repro.utils.bits import BitSequence

#: Anti-entropy cadence under test; the claim is convergence < 2x this.
INTERVAL_S = 0.5

_PINNED_SEED = BitSequence.random(32, np.random.default_rng(61_001))

CLIENT_CFG = NetClientConfig(read_timeout_s=30.0)


def _tiny_bundle():
    return WaveKeyModelBundle(
        imu_encoder=build_imu_encoder(6, rng=0),
        rf_encoder=build_rf_encoder(6, rng=1),
        decoder=build_decoder(6, rng=2),
        n_bins=8,
        eta=0.2,
    )


def _fixed_acquire(request, rng):
    gen = np.random.default_rng(request.rng_seed)
    a_matrix = gen.normal(size=(50, 3))
    r_matrix = np.stack(
        [
            gen.uniform(-np.pi, np.pi, 100),
            np.abs(gen.normal(size=100)) + 0.5,
        ],
        axis=1,
    )
    return a_matrix, r_matrix


def _spawn_fleet(n, *, replicate, interval_s=INTERVAL_S):
    bundle = _tiny_bundle()
    fleet = []
    for _ in range(n):
        access = WaveKeyAccessServer(
            bundle, ServiceConfig(workers=2), acquire_fn=_fixed_acquire
        )
        access.start()
        access._imu_batcher.batch_fn = (
            lambda items: [_PINNED_SEED for _ in items]
        )
        access._rf_batcher.batch_fn = (
            lambda items: [_PINNED_SEED for _ in items]
        )
        store = KeyStore(ttl_s=600.0, metrics=access.metrics)
        replicator = (
            Replicator(store, anti_entropy_interval_s=interval_s)
            if replicate
            else None
        )
        tcp = WaveKeyTCPServer(
            access, "127.0.0.1", 0, key_store=store, replicator=replicator
        )
        tcp.start()
        fleet.append((access, tcp, replicator))
    addresses = [
        f"{tcp.address[0]}:{tcp.address[1]}" for _, tcp, _ in fleet
    ]
    for _, tcp, replicator in fleet:
        if replicator is not None:
            self_key = f"{tcp.address[0]}:{tcp.address[1]}"
            replicator.set_peers(
                [a for a in addresses if a != self_key]
            )
    return fleet, addresses


def _close_fleet(fleet):
    for access, tcp, _ in fleet:
        tcp.stop()
        access.stop()


def _client(address):
    host, _, port = address.rpartition(":")
    return WaveKeyNetClient(host, int(port), CLIENT_CFG)


def _wait_for(predicate, timeout_s, detail):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {detail}")


def test_revocation_propagates_within_two_rounds():
    fleet, addresses = _spawn_fleet(3, replicate=True)
    stop = threading.Event()

    def establishment_load(address, seed_base):
        seed = seed_base
        while not stop.is_set():
            _client(address).establish(rng_seed=seed)
            seed += 1

    workers = [
        threading.Thread(
            target=establishment_load,
            args=(addresses[i], 7000 + 1000 * i),
            daemon=True,
        )
        for i in range(2)
    ]
    try:
        for worker in workers:
            worker.start()

        result = _client(addresses[0]).establish(rng_seed=11)
        assert result.success and result.ticket is not None
        ticket = result.ticket
        _wait_for(
            lambda: all(
                tcp.key_store.peek(ticket.ticket_id) is not None
                for _, tcp, _ in fleet
            ),
            timeout_s=10.0,
            detail="the grant to replicate to every backend",
        )

        def rejected(tcp):
            try:
                tcp.key_store.resume(ticket.ticket_id)
            except TicketRevoked:
                return True
            except Exception:
                return False
            return False

        start = time.perf_counter()
        assert _client(addresses[1]).revoke(ticket) is True
        elapsed = {}
        deadline = start + 2 * INTERVAL_S + 5.0  # measure past the bound
        pending = {i for i in range(3)}
        while pending and time.perf_counter() < deadline:
            for index in sorted(pending):
                if rejected(fleet[index][1]):
                    elapsed[index] = time.perf_counter() - start
                    pending.discard(index)
            time.sleep(0.001)
    finally:
        stop.set()
        for worker in workers:
            worker.join(timeout=30.0)
        _close_fleet(fleet)

    assert not pending, f"backends {sorted(pending)} never saw the revoke"
    print()
    print(format_table(
        ["backend", "revocation visible after (ms)"],
        [
            [addresses[i], f"{1000 * elapsed[i]:.1f}"]
            for i in sorted(elapsed)
        ],
        title=(
            "revocation propagation under establishment load "
            f"(anti-entropy interval {INTERVAL_S}s, bound "
            f"{2 * INTERVAL_S}s)"
        ),
    ))
    worst = max(elapsed.values())
    assert worst < 2 * INTERVAL_S, (
        f"slowest backend saw the revocation after {worst:.3f}s; the "
        f"design bound is 2 rounds = {2 * INTERVAL_S}s"
    )


def test_replication_overhead_on_establishment_throughput():
    n = 6 * bench_scale()
    means = {}
    for label, replicate in (("off", False), ("on", True)):
        fleet, addresses = _spawn_fleet(3, replicate=replicate)
        try:
            warmup = _client(addresses[0]).establish(rng_seed=4999)
            assert warmup.success
            start = time.perf_counter()
            results = [
                _client(addresses[0]).establish(rng_seed=5000 + i)
                for i in range(n)
            ]
            means[label] = (time.perf_counter() - start) / n
        finally:
            _close_fleet(fleet)
        assert all(r.success for r in results), label

    print()
    print(format_table(
        ["replication", "per session (ms)", "sessions/s"],
        [
            [label, f"{1000 * mean:.1f}", f"{1 / mean:.1f}"]
            for label, mean in means.items()
        ],
        title=(
            f"establishment throughput, {n} sequential sessions "
            "against one backend of a 3-backend fleet"
        ),
    ))

    # The grant path's replication cost is one log append plus a
    # queue put; the pushes themselves ride a worker thread.  Within
    # 10%, plus a small absolute allowance for scheduler jitter.
    assert means["on"] <= 1.10 * means["off"] + 0.050, (
        f"replication on {means['on'] * 1000:.1f} ms/session vs "
        f"off {means['off'] * 1000:.1f} ms/session"
    )
