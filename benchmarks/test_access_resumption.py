"""Access extension: ticket resumption vs full establishment.

WaveKey's mobile ad-hoc story needs re-access to be cheap: the gesture
and the ~100-modexp OT exchange happen once, and every later visit
rides the resumption ticket (:mod:`repro.access`).  This benchmark
pins that payoff over real loopback sockets:

* full establishment — client SDK -> TCP server -> worker pool, the
  complete gesture/OT/reconciliation pipeline per session;
* ticket resumption — ``open_channel`` (nonce handshake, four HKDF
  expansions, two HMACs) plus one authenticated ``query`` op.

The acceptance bar is resumption >= 5x faster per session; measured
ratios on loopback are orders of magnitude beyond it, so the assert
holds on any CI box.  Scaling: 6 resumes per WAVEKEY_BENCH_SCALE unit.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.net import NetClientConfig, WaveKeyNetClient, WaveKeyTCPServer
from repro.service import ServiceConfig, WaveKeyAccessServer
from repro.utils.bits import BitSequence

RESUMES = 6
ESTABLISHMENTS = 2

#: The issue's acceptance floor; loopback measurements clear it by
#: two to three orders of magnitude.
MIN_SPEEDUP = 5.0


def _pin_seeds(server, seed):
    server._imu_batcher.batch_fn = lambda items: [seed for _ in items]
    server._rf_batcher.batch_fn = lambda items: [seed for _ in items]


def _fixed_acquire(request, rng):
    gen = np.random.default_rng(request.rng_seed)
    a_matrix = gen.normal(size=(200, 3))
    r_matrix = np.stack(
        [
            gen.uniform(-np.pi, np.pi, 400),
            np.abs(gen.normal(size=400)) + 0.5,
        ],
        axis=1,
    )
    return a_matrix, r_matrix


def test_resumption_beats_full_establishment(bundle):
    n_establish = ESTABLISHMENTS * bench_scale()
    n_resume = RESUMES * bench_scale()
    seed = BitSequence.random(32, np.random.default_rng(50_001))

    with WaveKeyAccessServer(
        bundle, ServiceConfig(workers=2), acquire_fn=_fixed_acquire
    ) as server:
        _pin_seeds(server, seed)
        with WaveKeyTCPServer(server) as tcp:
            client = WaveKeyNetClient(
                *tcp.address, NetClientConfig(read_timeout_s=30.0)
            )

            establish_times = []
            ticket = None
            for i in range(n_establish):
                start = time.perf_counter()
                result = client.establish(rng_seed=2000 + i)
                establish_times.append(time.perf_counter() - start)
                assert result.success
                assert result.ticket is not None
                ticket = result.ticket

            resume_times = []
            for _ in range(n_resume):
                start = time.perf_counter()
                with client.open_channel(ticket) as channel:
                    reply = channel.request("query", target="door")
                resume_times.append(time.perf_counter() - start)
                assert reply["allowed"] is True

    establish_s = sum(establish_times) / len(establish_times)
    resume_s = sum(resume_times) / len(resume_times)
    speedup = establish_s / resume_s

    print()
    print(format_table(
        ["path", "sessions", "mean (ms)", "speedup"],
        [
            ["full establishment", f"{n_establish}",
             f"{1000 * establish_s:.1f}", "1.0x"],
            ["ticket resume + query", f"{n_resume}",
             f"{1000 * resume_s:.2f}", f"{speedup:.0f}x"],
        ],
        title="secure re-access: agreement vs resumption (loopback)",
    ))
    assert speedup >= MIN_SPEEDUP, (
        f"resumption only {speedup:.1f}x faster than establishment "
        f"(floor {MIN_SPEEDUP}x)"
    )
