"""Fig. 7: random-guessing and gesture-mimicking success vs N_b.

Paper setup (SVI-C.2): sweep the quantization bin count N_b over
[4, 15]; for each value calibrate the ECC rate eta at the 99th-percentile
benign seed mismatch, then score (a) the Eq. 4 random-guess success and
(b) the empirical gesture-mimicking success.  The paper selects N_b = 9
as the joint optimum; our reproduction selects 8 or 9 (see the N_b
deviation note in DESIGN.md) — the *shape* (guessing success falls with
N_b while mimicking success rises once eta inflates) is the target.

Also covers SV-B.1's analytic point: Eq. 4 evaluated at the calibrated
operating point, cross-checked by Monte Carlo.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.attacks import GestureMimicryAttack, RandomGuessAttack
from repro.core import KeySeedPipeline, sweep_quantization_bins
from repro.core.hyperparams import select_optimal_bins
from repro.datasets import DatasetConfig, generate_dataset
from repro.gesture import default_volunteers, mimic_trajectory, sample_gesture
from repro.imu import MobileIMU, calibrate_imu_record, default_mobile_devices
from repro.rfid import (
    ChannelGeometry,
    RFIDReader,
    default_environments,
    default_tags,
    process_rfid_record,
)
from repro.utils.rng import child_rng


def _benign_matrices(n_gestures, seed):
    config = DatasetConfig(
        volunteers=default_volunteers(),
        devices=default_mobile_devices()[3:4],
        gestures_per_device=max(1, n_gestures // 6),
        windows_per_gesture=4,
        gesture_active_s=5.0,
    )
    dataset = generate_dataset(config, rng=seed)
    return dataset.a_matrices(), dataset.r_matrices()


def _mimicry_matrices(n_instances, seed):
    """Matched (attacker A matrix, victim R matrix) rows."""
    volunteers = default_volunteers()
    device = default_mobile_devices()[3]
    environment = default_environments()[0]
    tag = default_tags()[0]
    geometry = ChannelGeometry()
    mimic_a, victim_r = [], []
    i = 0
    while len(mimic_a) < n_instances:
        rng = child_rng(seed, "inst", i)
        i += 1
        victim = volunteers[i % len(volunteers)]
        imitator = volunteers[(i + 1) % len(volunteers)]
        trajectory = sample_gesture(victim, child_rng(rng, "gesture"))
        try:
            channel = environment.build_channel(tag, geometry, rng=rng)
            record = RFIDReader().record_gesture(
                channel, trajectory, rng=child_rng(rng, "reader")
            )
            r = process_rfid_record(record)
            mimic = mimic_trajectory(
                trajectory, imitator, rng=child_rng(rng, "mimic")
            )
            imu_record = MobileIMU(device).record_gesture(
                mimic, rng=child_rng(rng, "imu")
            )
            a = calibrate_imu_record(imu_record)
        except Exception:
            continue
        mimic_a.append(a)
        victim_r.append(r)
    return np.stack(mimic_a), np.stack(victim_r)


def test_fig7_bin_sweep(bundle, benchmark):
    scale = bench_scale()
    a, r = _benign_matrices(12 * scale, seed=4001)
    mimic_a, victim_r = _mimicry_matrices(20 * scale, seed=4002)

    points = sweep_quantization_bins(
        bundle, a, r,
        mimic_a_matrices=mimic_a,
        victim_r_matrices=victim_r,
        n_bins_values=tuple(range(4, 16)),
    )
    rows = [
        [p.n_bins, p.seed_length, f"{p.eta:.3f}",
         f"{p.guess_success:.2e}", f"{100 * p.mimicry_success:.1f}%",
         f"{100 * p.benign_success:.1f}%"]
        for p in points
    ]
    print()
    print(format_table(
        ["N_b", "l_s", "eta", "P_guess (Eq. 4)", "P_mimic", "benign"],
        rows,
        title="Fig. 7 reproduction (paper optimum N_b = 9)",
    ))
    best = select_optimal_bins(points)
    print(f"selected N_b = {best.n_bins} "
          f"(bundle ships N_b = {bundle.n_bins})")

    # Shape assertions: random-guess success is small at every operating
    # point (and falls as N_b grows); mimicry stays low at the selected
    # optimum.  The benign column is bounded below by the substrate's
    # noisier mismatch distribution (EXPERIMENTS.md).
    assert all(p.guess_success < 2e-2 for p in points)
    assert points[-1].guess_success < points[0].guess_success * 1.01
    assert best.mimicry_success <= 0.15
    assert best.benign_success >= 0.3

    # Monte-Carlo cross-check of Eq. 4 at the shipped operating point
    # (SV-B.1): zero hits expected at any practical trial count.
    pipeline = KeySeedPipeline(bundle)
    attack = RandomGuessAttack(eta=bundle.eta)
    victim_seeds = [
        pipeline.rfid_keyseed(r[i]) for i in range(min(10, len(r)))
    ]
    outcome = attack.run(victim_seeds, guesses_per_victim=200, rng=4003)
    print(f"Monte-Carlo random guessing: {outcome.n_successes}/"
          f"{outcome.n_trials} (analytic "
          f"{attack.analytic_success(pipeline.seed_length):.2e})")
    assert outcome.success_rate <= max(
        10 * attack.analytic_success(pipeline.seed_length), 5e-3
    )

    # Timed unit: one full sweep point evaluation.
    benchmark(
        lambda: sweep_quantization_bins(
            bundle, a[:20], r[:20], n_bins_values=(9,)
        )
    )
