"""SVI-F.3: hardware-combination generality.

Paper setup: all 24 combinations of four mobile devices and six RFID
tags (the text says "nine tags" but the hardware list in SVI-A names
six; 4 x 6 = 24 matches the reported combination count); 200 gestures
per combination by one volunteer; success rates 99-100% everywhere.

Scaling: 4 gestures per combination per WAVEKEY_BENCH_SCALE unit.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table, success_rate
from repro.core import WaveKeySystem
from repro.gesture import default_volunteers
from repro.imu import default_mobile_devices
from repro.rfid import default_tags
from repro.utils.rng import child_rng


def test_device_tag_combinations(bundle, agreement_config, benchmark):
    n = 4 * bench_scale()
    volunteer = default_volunteers()[0]
    rates = {}
    rows = []
    for device in default_mobile_devices():
        row = [device.name]
        for tag in default_tags():
            system = WaveKeySystem(
                bundle, device=device, tag=tag,
                agreement_config=agreement_config,
            )
            outcomes = [
                system.establish_key(
                    volunteer=volunteer,
                    rng=child_rng(9001, device.name, tag.name, i),
                ).success
                for i in range(n)
            ]
            rate = success_rate(outcomes)
            rates[(device.name, tag.name)] = rate
            row.append(f"{100 * rate:.0f}%")
        rows.append(row)
    print()
    print(format_table(
        ["device \\ tag"] + [t.name for t in default_tags()],
        rows,
        title="SVI-F.3 reproduction: 24 device/tag combinations "
              "(paper: 99-100% everywhere)",
    ))

    values = np.array(list(rates.values()))
    # Shape assertions: works across all hardware combinations with no
    # catastrophic pair (absolute levels are substrate-limited).
    assert values.min() >= 0.2
    assert values.mean() >= 0.4

    # Timed unit: one establishment on the least-favourable hardware
    # (noisiest phone + weakest tag).
    system = WaveKeySystem(
        bundle,
        device=default_mobile_devices()[2],
        tag=default_tags()[1],
        agreement_config=agreement_config,
    )
    benchmark(lambda: system.establish_key(volunteer=volunteer, rng=9002))
