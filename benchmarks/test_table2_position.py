"""Table II: success rate vs user distance and azimuth angle.

Paper setup (SVI-F.2): distances {1, 3, 5, 7, 9} m at 0 degrees, then
azimuths {-60, -30, 0, 30, 60} degrees at 5 m; 200 gestures per cell in
each of static and dynamic conditions.  Paper shape: static flat at
99.5-100% everywhere; dynamic degrades slightly with distance (99.5% at
1 m down to 99% at 9 m) and is flat-ish across azimuth.

Scaling: 10 gestures per cell per WAVEKEY_BENCH_SCALE unit.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table, success_rate
from repro.core import WaveKeySystem
from repro.gesture import default_volunteers, sample_gesture
from repro.rfid import ChannelGeometry, default_environments
from repro.utils.rng import child_rng

DISTANCES_M = (1.0, 3.0, 5.0, 7.0, 9.0)
AZIMUTHS_DEG = (-60.0, -30.0, 0.0, 30.0, 60.0)


def run_cell(bundle, agreement_config, geometry, dynamic, n, seed):
    system = WaveKeySystem(
        bundle,
        environment=default_environments()[0],
        geometry=geometry,
        agreement_config=agreement_config,
    )
    volunteer = default_volunteers()[0]
    outcomes = []
    for i in range(n):
        result = system.establish_key(
            volunteer=volunteer, dynamic=dynamic,
            rng=child_rng(seed, geometry.user_distance_m,
                          geometry.user_azimuth_deg, dynamic, i),
        )
        outcomes.append(result.success)
    return success_rate(outcomes)


def test_table2_distance_and_azimuth(bundle, agreement_config, benchmark):
    n = 10 * bench_scale()
    dist_rows = []
    static_by_distance = []
    dynamic_by_distance = []
    for distance in DISTANCES_M:
        geometry = ChannelGeometry(user_distance_m=distance)
        s = run_cell(bundle, agreement_config, geometry, False, n, 2001)
        d = run_cell(bundle, agreement_config, geometry, True, n, 2002)
        static_by_distance.append(s)
        dynamic_by_distance.append(d)
        dist_rows.append(
            [f"{distance:.0f} m", f"{100 * s:.1f}%", f"{100 * d:.1f}%"]
        )
    print()
    print(format_table(
        ["distance", "static", "dynamic"], dist_rows,
        title="Table II (distance) reproduction "
              "(paper: static ~99.5-100%, dynamic 99-99.5% falling with "
              "distance)",
    ))

    azim_rows = []
    static_by_azimuth = []
    dynamic_by_azimuth = []
    for azimuth in AZIMUTHS_DEG:
        geometry = ChannelGeometry(user_distance_m=5.0,
                                   user_azimuth_deg=azimuth)
        s = run_cell(bundle, agreement_config, geometry, False, n, 2003)
        d = run_cell(bundle, agreement_config, geometry, True, n, 2004)
        static_by_azimuth.append(s)
        dynamic_by_azimuth.append(d)
        azim_rows.append(
            [f"{azimuth:+.0f} deg", f"{100 * s:.1f}%", f"{100 * d:.1f}%"]
        )
    print(format_table(
        ["azimuth", "static", "dynamic"], azim_rows,
        title="Table II (azimuth) reproduction (paper: flat-ish, "
              ">= 98.5%)",
    ))

    # Shape assertions.  Success at/near the calibration geometry (3-5 m,
    # 0 deg) is solid; our encoders generalize across position only to
    # the extent the training data covered it (a recorded divergence —
    # see EXPERIMENTS.md), so off-geometry cells are reported rather
    # than asserted.
    assert static_by_distance[1] >= 0.35  # 3 m
    assert static_by_distance[2] >= 0.35  # 5 m
    assert static_by_azimuth[2] >= 0.35  # 0 deg
    # The paper's distance trend: close-range dynamic is at least as
    # good as far-range dynamic.
    assert np.mean(dynamic_by_distance[:3]) >= (
        np.mean(dynamic_by_distance[-2:]) - 0.1
    )

    # Timed unit: acquisition + agreement at the default 5 m position.
    system = WaveKeySystem(bundle, agreement_config=agreement_config)
    trajectory = sample_gesture(default_volunteers()[0], rng=77)
    benchmark(lambda: system.establish_key(trajectory=trajectory, rng=78))
