"""OT fast path: fixed-base comb + warm material pool vs the naive path.

One WaveKey establishment runs ~100 Chou-Orlandi OT instances in each
direction, and the naive arithmetic spends five full-width modular
exponentiations (plus one inverse) per instance.  The fast path stacks
three standard levers:

* **fixed-base comb** tables for every ``g^x`` (one multiplication per
  exponent digit, no squarings);
* **short secret exponents** (256-bit for the 512-bit simulation group,
  RFC 7919 s5.2) halving every remaining variable-base ``pow``;
* the **warm material pool** moving both fixed-base exponentiations and
  the sender's second-key factor off the request path entirely.

Three measurements:

* batched-OT microbenchmark — ``run_batch_ot`` wall time, naive vs
  comb-only vs pooled (pinned: pooled >= 2.5x naive);
* end-to-end establishment throughput through the access server with a
  live refill worker, fast vs naive configuration;
* pool exhaustion — a depth-2 pool against ~100-instance sessions must
  degrade to inline compute (counted misses) with zero failed sessions.

Thresholds relax via ``WAVEKEY_OT_FASTPATH_MIN_SPEEDUP`` /
``WAVEKEY_OT_FASTPATH_MIN_E2E_GAIN`` so shared CI boxes don't flake;
``WAVEKEY_OT_FASTPATH_OUT`` names a JSON file the measured numbers are
merged into (the CI perf-smoke job uploads it as an artifact).

Scaling: 96 OT instances and 6 e2e sessions per WAVEKEY_BENCH_SCALE
unit.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.crypto import OTMaterialPool, WAVEKEY_GROUP_512, run_batch_ot
from repro.protocol import KeyAgreementConfig
from repro.service import AccessRequest, ServiceConfig, WaveKeyAccessServer

#: The seed-exact reference configuration every speedup is measured
#: against: built-in ``pow``, full-width exponent draws.
NAIVE_GROUP = WAVEKEY_GROUP_512.with_comb(False).with_exponent_bits(None)
#: The shipped fast path (comb + 256-bit exponents).
FAST_GROUP = WAVEKEY_GROUP_512


def _min_speedup() -> float:
    return float(os.environ.get("WAVEKEY_OT_FASTPATH_MIN_SPEEDUP", "2.5"))


def _min_e2e_gain() -> float:
    return float(os.environ.get("WAVEKEY_OT_FASTPATH_MIN_E2E_GAIN", "1.15"))


def _record(section: str, payload: dict) -> None:
    """Merge one section of results into WAVEKEY_OT_FASTPATH_OUT."""
    out = os.environ.get("WAVEKEY_OT_FASTPATH_OUT")
    if not out:
        return
    results = {}
    if os.path.exists(out):
        with open(out, "r", encoding="utf-8") as fh:
            results = json.load(fh)
    results[section] = payload
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_ot_speedup():
    n = 96 * bench_scale()
    pairs = [(bytes([i % 251]), bytes([(i + 97) % 251])) for i in range(n)]
    choices = [i % 2 for i in range(n)]
    expected = [pairs[i][c] for i, c in enumerate(choices)]

    def naive():
        assert run_batch_ot(NAIVE_GROUP, pairs, choices, 1, 2) == expected

    def comb_only():
        assert run_batch_ot(FAST_GROUP, pairs, choices, 1, 2) == expected

    FAST_GROUP.comb()  # build tables outside the timed region
    naive_s = _best_of(naive)
    comb_s = _best_of(comb_only)

    def pooled():
        # A fresh prefilled pool per repeat: every instance must hit.
        pool = OTMaterialPool(depth=n, rng=3)
        pool.register(FAST_GROUP)
        pool.fill()
        start = time.perf_counter()
        assert run_batch_ot(
            FAST_GROUP, pairs, choices, 1, 2, pool=pool
        ) == expected
        return time.perf_counter() - start

    pooled_s = min(pooled() for _ in range(3))

    comb_x = naive_s / comb_s
    pooled_x = naive_s / pooled_s
    print()
    print(format_table(
        ["path", "wall (ms)", "OT/s", "speedup"],
        [
            ["naive (pow, full-width)", f"{naive_s * 1e3:.1f}",
             f"{n / naive_s:.0f}", "1.00x"],
            ["comb + short exponents", f"{comb_s * 1e3:.1f}",
             f"{n / comb_s:.0f}", f"{comb_x:.2f}x"],
            ["comb + warm pool", f"{pooled_s * 1e3:.1f}",
             f"{n / pooled_s:.0f}", f"{pooled_x:.2f}x"],
        ],
        title=f"batched OT, {n} instances",
    ))
    _record("batched_ot", {
        "instances": n,
        "naive_s": naive_s,
        "comb_s": comb_s,
        "pooled_s": pooled_s,
        "comb_speedup": comb_x,
        "pooled_speedup": pooled_x,
        "min_required": _min_speedup(),
    })

    assert pooled_x >= _min_speedup(), (
        f"pooled batched OT is {pooled_x:.2f}x the naive path, below the "
        f"required {_min_speedup():.2f}x"
    )
    assert comb_s < naive_s, (
        f"comb-only path ({comb_s:.3f}s) not faster than naive "
        f"({naive_s:.3f}s)"
    )


def _serve_sessions(bundle, service_config, agreement_config, seeds):
    """Establish one session per seed; return (wall_s, outcomes)."""
    server = WaveKeyAccessServer(
        bundle, service_config, agreement_config=agreement_config
    )
    with server:
        if server.ot_pool is not None:
            server.ot_pool.fill()  # start warm, as a steady-state server is
        start = time.perf_counter()
        tickets = [
            server.submit(AccessRequest(rng_seed=seed)) for seed in seeds
        ]
        records = [t.result(timeout=120.0) for t in tickets]
        wall_s = time.perf_counter() - start
        counters = server.metrics.snapshot()["counters"]
    return wall_s, records, counters


def test_e2e_establishment_gain(bundle):
    n = 6 * bench_scale()
    seeds = [41_000 + i for i in range(n)]

    naive_s, naive_records, _ = _serve_sessions(
        bundle,
        ServiceConfig(workers=2, ot_pool_depth=0),
        KeyAgreementConfig(eta=bundle.eta, group=NAIVE_GROUP),
        seeds,
    )
    fast_s, fast_records, counters = _serve_sessions(
        bundle,
        ServiceConfig(workers=2, ot_pool_depth=256),
        KeyAgreementConfig(eta=bundle.eta, group=FAST_GROUP),
        seeds,
    )

    # Same gestures, same encoders: the fast path changes arithmetic,
    # never outcomes.
    assert [r.success for r in fast_records] == [
        r.success for r in naive_records
    ]
    assert counters.get(
        'crypto.pool.hit{group="wavekey-512",kind="sender"}', 0
    ) > 0

    gain = naive_s / fast_s
    print()
    print(format_table(
        ["config", "wall (s)", "sessions/s", "gain"],
        [
            ["naive group, no pool", f"{naive_s:.2f}",
             f"{n / naive_s:.2f}", "1.00x"],
            ["fast path + warm pool", f"{fast_s:.2f}",
             f"{n / fast_s:.2f}", f"{gain:.2f}x"],
        ],
        title=f"end-to-end establishment, {n} sessions",
    ))
    _record("e2e_establishment", {
        "sessions": n,
        "naive_s": naive_s,
        "fast_s": fast_s,
        "gain": gain,
        "min_required": _min_e2e_gain(),
    })

    assert gain >= _min_e2e_gain(), (
        f"fast-path server is {gain:.2f}x the naive server, below the "
        f"required {_min_e2e_gain():.2f}x"
    )


def test_pool_exhaustion_degrades_gracefully(bundle):
    """A hopelessly undersized pool must cost throughput, never sessions."""
    n = 4 * bench_scale()
    seeds = [42_000 + i for i in range(n)]

    _, baseline_records, _ = _serve_sessions(
        bundle,
        ServiceConfig(workers=2, ot_pool_depth=0),
        KeyAgreementConfig(eta=bundle.eta, group=FAST_GROUP),
        seeds,
    )
    # Depth 2 against ~100 OT instances per session: essentially every
    # take is a miss, computed inline.
    _, starved_records, counters = _serve_sessions(
        bundle,
        ServiceConfig(workers=2, ot_pool_depth=2),
        KeyAgreementConfig(eta=bundle.eta, group=FAST_GROUP),
        seeds,
    )

    misses = counters.get(
        'crypto.pool.miss{group="wavekey-512",kind="sender"}', 0
    )
    assert misses > 0, "depth-2 pool never missed — benchmark is broken"
    assert [r.success for r in starved_records] == [
        r.success for r in baseline_records
    ], "pool exhaustion changed session outcomes"
    assert not any(
        r.failure_reason and "pool" in r.failure_reason.lower()
        for r in starved_records
    )
    _record("pool_exhaustion", {
        "sessions": n,
        "sender_misses": misses,
        "outcomes_match_baseline": True,
    })
