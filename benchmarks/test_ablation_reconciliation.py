"""Ablation: segment-level RS reconciliation vs bit-level BCH.

DESIGN.md substitutes the paper's unspecified "ECC" with a segment-level
interleaved Reed-Solomon code-offset sketch, arguing that key mismatches
arrive as whole corrupted segments.  This ablation quantifies the choice
against the natural alternative (a binary BCH code over the raw key
bits, sized for the same worst case):

* correction guarantee — RS corrects any ``floor(eta l_s)`` segment
  mismatches; BCH must budget ``2 l_b`` bit errors per segment and for
  realistic operating points that parity does not even fit in the key;
* wire size and compute per reconciliation.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.analysis import format_table
from repro.crypto import SegmentSecureSketch, SecureSketch, design_bch
from repro.errors import ConfigurationError
from repro.utils.bits import BitSequence


def _corrupt_segments(key, n_segments, segment_bits, count, rng):
    noisy = key.array.copy().reshape(n_segments, segment_bits)
    chosen = rng.choice(n_segments, size=count, replace=False)
    for s in chosen:
        noisy[s] = rng.integers(0, 2, size=segment_bits, dtype=np.uint8)
    return BitSequence(noisy.reshape(-1))


def test_reconciliation_ablation(pipeline, bundle, benchmark):
    l_s = pipeline.seed_length
    rows = []
    rng = np.random.default_rng(12_001)
    for l_k in (128, 256, 2048):
        l_b = max(1, math.ceil(l_k / (2 * l_s)))
        segment_bits = 2 * l_b
        n_bits = l_s * segment_bits
        tolerance = max(1, math.floor(bundle.eta * l_s))

        rs = SegmentSecureSketch(l_s, segment_bits, tolerance)
        key = BitSequence.random(n_bits, rng)
        start = time.perf_counter()
        sketch = rs.sketch(key, rng)
        noisy = _corrupt_segments(key, l_s, segment_bits, tolerance, rng)
        recovered = rs.recover(sketch, noisy)
        rs_ms = (time.perf_counter() - start) * 1000
        assert recovered == key

        try:
            bch = SecureSketch(
                design_bch(n_bits, tolerance * segment_bits)
            )
            bch_leak = f"{bch.leakage_bits} bits"
            bch_note = "fits"
        except ConfigurationError:
            bch_leak = "-"
            bch_note = "parity exceeds key length (unusable)"
        rows.append([
            l_k,
            f"RS: {rs.leakage_bits} bits leak, {rs_ms:.1f} ms",
            f"BCH: {bch_leak} ({bch_note})",
        ])
    print()
    print(format_table(
        ["key length", "segment RS (ours)", "bit-level BCH (alternative)"],
        rows,
        title="Reconciliation ablation: RS symbols match the segment "
              "error model; worst-case-sized BCH does not fit",
    ))

    # Timed unit: the 256-bit RS reconciliation round trip.
    l_b = max(1, math.ceil(256 / (2 * l_s)))
    rs = SegmentSecureSketch(
        l_s, 2 * l_b, max(1, math.floor(bundle.eta * l_s))
    )
    key = BitSequence.random(l_s * 2 * l_b, rng)
    sketch = rs.sketch(key, rng)
    noisy = _corrupt_segments(key, l_s, 2 * l_b, 1, rng)

    benchmark(lambda: rs.recover(sketch, noisy))
