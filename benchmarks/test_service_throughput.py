"""Service extension: micro-batched vs per-request encoder throughput.

The access-control server (``repro.service``) coalesces the encoder
forward passes of concurrent sessions into single stacked numpy calls.
This benchmark quantifies that design against the per-request baseline
(``max_batch_size=1``, every window encoded alone) under 64 concurrent
client sessions — the "rush hour" regime where a lineup service hands a
tag to a queue of visitors.

Two measurements:

* raw encoder compute — one stacked forward over N windows vs N single
  forwards (no threads, pure numpy);
* scheduled throughput — 64 client threads submitting through the
  :class:`MicroBatcher`, batched policy vs per-request policy.

Scaling: 64 concurrent sessions per WAVEKEY_BENCH_SCALE unit.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.service.batching import MicroBatcher

CONCURRENCY = 64


def _windows(n, rng):
    """Synthetic but shape/range-valid sensor windows."""
    pairs = []
    for _ in range(n):
        a_matrix = rng.normal(size=(200, 3))
        r_matrix = np.stack(
            [
                rng.uniform(-np.pi, np.pi, 400),
                np.abs(rng.normal(size=400)) + 0.5,
            ],
            axis=1,
        )
        pairs.append((a_matrix, r_matrix))
    return pairs


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        best = min(best, fn())
    return best


def _run_clients(batcher, windows):
    """Each client thread submits one window and waits for its seed."""
    barrier = threading.Barrier(len(windows) + 1)
    results = [None] * len(windows)

    def client(i):
        barrier.wait()
        results[i] = batcher.submit(windows[i]).result(timeout=60.0)

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(len(windows))
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - start, results


def test_microbatching_beats_per_request(pipeline):
    n = CONCURRENCY * bench_scale()
    rng = np.random.default_rng(31_001)
    pairs = _windows(n, rng)
    imu_windows = [a for a, _ in pairs]

    # --- raw encoder compute: stacked forward vs N single forwards.
    single_s = _best_of(
        lambda: _time(lambda: [pipeline.imu_keyseed(a) for a in imu_windows])
    )
    stacked_s = _best_of(
        lambda: _time(lambda: pipeline.imu_keyseeds(imu_windows))
    )

    # --- scheduled throughput through the MicroBatcher.
    def scheduled(batch_size):
        def once():
            with MicroBatcher(
                "imu",
                pipeline.imu_keyseeds,
                max_batch_size=batch_size,
                max_wait_s=0.002,
            ) as batcher:
                elapsed, results = _run_clients(batcher, imu_windows)
            assert all(r is not None for r in results)
            return elapsed

        return _best_of(once)

    per_request_s = scheduled(1)
    batched_s = scheduled(CONCURRENCY)

    print()
    print(format_table(
        ["mode", "wall (ms)", "keys/s"],
        [
            ["single forwards", f"{single_s * 1e3:.1f}",
             f"{n / single_s:.0f}"],
            ["stacked forward", f"{stacked_s * 1e3:.1f}",
             f"{n / stacked_s:.0f}"],
            ["scheduler, batch=1", f"{per_request_s * 1e3:.1f}",
             f"{n / per_request_s:.0f}"],
            [f"scheduler, batch={CONCURRENCY}",
             f"{batched_s * 1e3:.1f}", f"{n / batched_s:.0f}"],
        ],
        title=f"IMU-En throughput, {n} concurrent sessions",
    ))

    # The whole point of the subsystem: batching must win at this
    # concurrency, both in raw compute and through the scheduler.
    assert stacked_s < single_s, (
        f"stacked forward ({stacked_s:.3f}s) not faster than "
        f"{n} single forwards ({single_s:.3f}s)"
    )
    assert batched_s < per_request_s, (
        f"micro-batched scheduling ({batched_s:.3f}s) not faster than "
        f"per-request ({per_request_s:.3f}s) at concurrency {n}"
    )


def test_batched_results_match_per_request(pipeline):
    """Batched inference is the same computation, not an approximation."""
    rng = np.random.default_rng(31_002)
    pairs = _windows(8, rng)
    for single, batched in zip(
        [pipeline.imu_keyseed(a) for a, _ in pairs],
        pipeline.imu_keyseeds([a for a, _ in pairs]),
    ):
        # Identical up to float reduction order; quantization makes any
        # residual difference visible as seed bit flips.
        assert single.mismatch_rate(batched) <= 0.05
    for single, batched in zip(
        [pipeline.rfid_keyseed(r) for _, r in pairs],
        pipeline.rfid_keyseeds([r for _, r in pairs]),
    ):
        assert single.mismatch_rate(batched) <= 0.05


def _time(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
