"""Connection-scaling benchmarks for the event-loop network tier.

The thread-per-connection front end pays one OS thread per socket for
its whole lifetime, so idle connections are the expensive case: a
thousand phones sitting in a lobby with the app open would cost a
thousand blocked threads.  The event-loop front end pins that cost:

* **idle scaling** — ``WAVEKEY_SCALE_CONNS`` idle connections (default
  1000, bounded by the fd rlimit; CI runs 256) are held open against
  one event-loop server while the process thread count is asserted
  flat: the network tier adds at most 2 threads over the bare access
  server, and opening every idle connection adds zero more.  Real
  establishments keep succeeding around the idlers (liveness).
* **per-session latency parity** — N sequential loopback
  establishments through the event-loop server vs the threaded
  baseline, identical pinned seeds: the loop's scheduling hops must
  stay within 10% (plus a small absolute jitter allowance) of the
  thread-per-connection design it replaces.

Set ``WAVEKEY_SCALE_METRICS_OUT=FILE`` to dump the server's metrics
snapshot (loop health series included) as JSON — CI uploads it as the
``net-scale`` artifact.  Scaling: 6 latency sessions per
``WAVEKEY_BENCH_SCALE`` unit.
"""

from __future__ import annotations

import json
import os
import resource
import socket
import threading
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis import format_table
from repro.net import (
    NetClientConfig,
    ThreadedWaveKeyTCPServer,
    WaveKeyNetClient,
    WaveKeyTCPServer,
)
from repro.service import ServiceConfig, WaveKeyAccessServer
from repro.utils.bits import BitSequence


def _pin_seeds(server, seed):
    server._imu_batcher.batch_fn = lambda items: [seed for _ in items]
    server._rf_batcher.batch_fn = lambda items: [seed for _ in items]


def _fixed_acquire(request, rng):
    gen = np.random.default_rng(request.rng_seed)
    a_matrix = gen.normal(size=(200, 3))
    r_matrix = np.stack(
        [
            gen.uniform(-np.pi, np.pi, 400),
            np.abs(gen.normal(size=400)) + 0.5,
        ],
        axis=1,
    )
    return a_matrix, r_matrix


def _target_connections() -> int:
    """Requested idle-connection count, bounded by the fd rlimit (each
    loopback connection costs two descriptors in this process)."""
    requested = int(os.environ.get("WAVEKEY_SCALE_CONNS", "1000"))
    soft, _hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    budget = max(64, (soft - 256) // 2)
    return min(requested, budget)


def _wait_for(predicate, timeout_s, detail):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"{detail} not met within {timeout_s}s")


def test_idle_connections_scale_at_flat_thread_count(bundle):
    n_conns = _target_connections()
    seed = BitSequence.random(32, np.random.default_rng(41_001))
    workers = 2
    with WaveKeyAccessServer(
        bundle, ServiceConfig(workers=workers), acquire_fn=_fixed_acquire
    ) as server:
        _pin_seeds(server, seed)
        threads_before_net = threading.active_count()
        # Idle connections must not be reaped mid-benchmark by the
        # hello deadline.
        with WaveKeyTCPServer(
            server, handshake_timeout_s=600.0
        ) as tcp:
            threads_with_net = threading.active_count()
            net_tier_threads = threads_with_net - threads_before_net
            host, port = tcp.address

            idle = []
            try:
                start = time.perf_counter()
                for i in range(n_conns):
                    idle.append(socket.create_connection((host, port)))
                    if i % 100 == 99:
                        time.sleep(0.01)  # let the accept loop drain
                _wait_for(
                    lambda: server.metrics.snapshot().get(
                        "gauges", {}
                    ).get("net.conn.open", 0) >= n_conns,
                    timeout_s=60.0,
                    detail=f"{n_conns} idle connections accepted",
                )
                accept_s = time.perf_counter() - start
                threads_at_peak = threading.active_count()

                # Liveness: establishments still complete while every
                # idle connection stays open.
                live_config = NetClientConfig(read_timeout_s=30.0)
                live = [
                    WaveKeyNetClient(
                        host, port, live_config
                    ).establish(rng_seed=3000 + i)
                    for i in range(3)
                ]
            finally:
                for sock in idle:
                    sock.close()

            print()
            print(format_table(
                ["idle conns", "net-tier threads", "threads at peak",
                 "accept (s)", "conns/s"],
                [[
                    f"{n_conns}", f"+{net_tier_threads}",
                    f"{threads_at_peak}", f"{accept_s:.2f}",
                    f"{n_conns / accept_s:.0f}",
                ]],
                title=(
                    f"idle-connection scaling, {workers} protocol workers "
                    f"(threads before net tier: {threads_before_net})"
                ),
            ))

            snapshot_out = os.environ.get("WAVEKEY_SCALE_METRICS_OUT")
            if snapshot_out:
                with open(snapshot_out, "w", encoding="utf-8") as fh:
                    json.dump(server.metrics.snapshot(), fh, indent=2,
                              default=str)

            # The network tier itself is a bounded number of threads...
            assert net_tier_threads <= 2, (
                f"event-loop front end added {net_tier_threads} threads"
            )
            # ...and idle connections add exactly zero more.
            assert threads_at_peak == threads_with_net, (
                f"thread count grew from {threads_with_net} to "
                f"{threads_at_peak} under {n_conns} idle connections"
            )
            assert all(r.success for r in live)

    assert n_conns >= 256, (
        f"fd rlimit capped the benchmark at {n_conns} connections"
    )


def test_event_loop_latency_parity_with_threaded_baseline(bundle):
    n = 6 * bench_scale()
    seed = BitSequence.random(32, np.random.default_rng(41_002))
    client_config = NetClientConfig(read_timeout_s=30.0)
    means = {}

    for label, front_end in (
        ("threaded", ThreadedWaveKeyTCPServer),
        ("event-loop", WaveKeyTCPServer),
    ):
        with WaveKeyAccessServer(
            bundle, ServiceConfig(workers=2), acquire_fn=_fixed_acquire
        ) as server:
            _pin_seeds(server, seed)
            with front_end(server) as tcp:
                # one warmup session absorbs lazy imports / allocator
                # warmup so the measured window compares steady states
                warmup = WaveKeyNetClient(
                    *tcp.address, client_config
                ).establish(rng_seed=4999)
                assert warmup.success
                start = time.perf_counter()
                results = [
                    WaveKeyNetClient(
                        *tcp.address, client_config
                    ).establish(rng_seed=5000 + i)
                    for i in range(n)
                ]
                means[label] = (time.perf_counter() - start) / n
        assert all(r.success for r in results), label

    print()
    print(format_table(
        ["front end", "per session (ms)", "sessions/s"],
        [
            [label, f"{1000 * mean:.1f}", f"{1 / mean:.1f}"]
            for label, mean in means.items()
        ],
        title=(
            f"per-session loopback latency, {n} sequential "
            "establishments per front end (identical pinned seeds)"
        ),
    ))

    # Parity bound: the loop's cross-thread hops ride sessions
    # dominated by OT group arithmetic; within 10% of the threaded
    # design, plus a small absolute allowance for 1-core scheduler
    # jitter on short runs.
    assert means["event-loop"] <= 1.10 * means["threaded"] + 0.050, (
        f"event-loop {means['event-loop'] * 1000:.1f} ms/session vs "
        f"threaded {means['threaded'] * 1000:.1f} ms/session"
    )
