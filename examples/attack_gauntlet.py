#!/usr/bin/env python
"""Context 3 + SV: a key fob deployment under active attack.

A resident registers a new phone against their building's RFID key fob
while an adversary (who knows the WaveKey design in full — the paper's
white-box model) runs every attack in the paper against the same
session: eavesdropping, man-in-the-middle substitution, gesture
mimicking from across the hall, and a hidden high-speed camera.

Run:  python examples/attack_gauntlet.py
"""

from __future__ import annotations

import sys

import repro
from repro.attacks import (
    CameraRecoveryAttack,
    Eavesdropper,
    GestureMimicryAttack,
    MitmAttacker,
    REMOTE_ALPCAM,
)
from repro.core import KeySeedPipeline, WaveKeySystem
from repro.gesture import sample_gesture
from repro.imu import default_mobile_devices
from repro.protocol import KeyAgreementConfig, SimulatedTransport
from repro.rfid import default_environments, default_tags
from repro.utils.rng import child_rng


def main() -> int:
    bundle = repro.load_default_bundle()
    pipeline = KeySeedPipeline(bundle)
    config = KeyAgreementConfig(key_length_bits=256, eta=bundle.eta)
    resident = repro.default_volunteers()[0]
    neighbour = repro.default_volunteers()[3]
    system = WaveKeySystem(
        bundle,
        tag=default_tags()[4],  # the building's DogBone fob
        environment=default_environments()[3],
        agreement_config=config,
    )
    verdicts = []

    print("WaveKey attack gauntlet (white-box adversary)")
    print("=" * 70)

    # 1. Eavesdropping on a successful registration.
    eve = Eavesdropper(group=config.group)
    trajectory = sample_gesture(resident, rng=11)
    seed_m, seed_r = system.acquire(trajectory, rng=12)
    outcome = system.agree_on_seeds(
        seed_m, seed_r, transport=SimulatedTransport(taps=[eve.tap]), rng=13
    )
    if outcome.success:
        forged = eve.attempt_key_recovery(
            segment_bits=config.segment_bits(len(seed_m)), rng=14
        )
        overlap = min(len(forged), len(outcome.key))
        agreement = 1 - forged[:overlap].mismatch_rate(outcome.key[:overlap])
        ok = abs(agreement - 0.5) < 0.1
        print(f"[1] eavesdropping: saw {eve.n_messages} messages, "
              f"recovered bits match real key {100 * agreement:.1f}% "
              f"(coin-flip) -> {'DEFEATED' if ok else 'LEAK?'}")
        verdicts.append(ok)
    else:
        print("[1] eavesdropping: benign session itself failed; rerun")
        verdicts.append(False)

    # 2. MitM substitution on the next session.
    mitm = MitmAttacker(group=config.group,
                        strategy="substitute_ciphertexts", rng=21)
    outcome = system.agree_on_seeds(
        seed_m, seed_r,
        transport=SimulatedTransport(interceptor=mitm.intercept), rng=22,
    )
    ok = not outcome.success
    print(f"[2] man-in-the-middle: modified "
          f"{mitm.modified_messages} messages, key established: "
          f"{outcome.success} -> {'DEFEATED' if ok else 'BROKEN'}")
    verdicts.append(ok)

    # 3. Gesture mimicking by the neighbour watching from the hall.
    mimic_attack = GestureMimicryAttack(
        pipeline=pipeline,
        eta=bundle.eta,
        device=default_mobile_devices()[0],
        tag=system.tag,
        environment=system.environment,
    )
    hits = 0
    trials = 6
    for i in range(trials):
        victim_traj = sample_gesture(resident, rng=child_rng(31, i))
        victim_seed = mimic_attack.victim_server_seed(
            victim_traj, child_rng(32, i)
        )
        mimic_seed = mimic_attack.attacker_seed(
            victim_traj, neighbour, child_rng(33, i)
        )
        hits += int(mimic_seed.mismatch_rate(victim_seed) <= bundle.eta)
    ok = hits == 0
    print(f"[3] gesture mimicking: {hits}/{trials} seed hits -> "
          f"{'DEFEATED' if ok else 'BROKEN'}")
    verdicts.append(ok)

    # 4. Hidden 260 FPS camera streaming to a backend server.
    camera_attack = CameraRecoveryAttack(
        pipeline=pipeline, eta=bundle.eta, camera=REMOTE_ALPCAM,
        announce_deadline_s=config.announce_deadline_s,
    )
    trial = camera_attack.attempt(trajectory, seed_r, rng=41)
    ok = not trial.succeeded
    print(f"[4] hidden camera (remote): succeeded={trial.succeeded} "
          f"({trial.detail or 'seed mismatch'}) -> "
          f"{'DEFEATED' if ok else 'BROKEN'}")
    verdicts.append(ok)

    print("=" * 70)
    print(f"{sum(verdicts)}/{len(verdicts)} attacks defeated")
    return 0 if all(verdicts) else 1


if __name__ == "__main__":
    sys.exit(main())
