#!/usr/bin/env python
"""Context 2 from the paper: RFID location-based access control.

A secured RFID card is chained next to a server-room console.  Staff
prove physical presence by waving their phone with the card before the
backend grants access.  This example is an *operations audit* of such a
deployment: it measures benign success across staff positions in the
room (near/far, off-angle, after-hours vs busy shift) and verifies the
proximity property — an attacker replaying RFID signals from elsewhere
cannot pass.

Run:  python examples/access_control_audit.py
"""

from __future__ import annotations

import sys

import repro
from repro.attacks import SignalSpoofingAttack
from repro.core import KeySeedPipeline, WaveKeySystem
from repro.protocol import KeyAgreementConfig
from repro.rfid import ChannelGeometry, default_environments, default_tags
from repro.imu import default_mobile_devices
from repro.utils.rng import child_rng

#: Staff positions inside the deployment's validated envelope (the
#: pretrained encoders generalize across the geometries their training
#: data covered — see EXPERIMENTS.md divergence 3).
POSITIONS = [
    ("console (3 m, head-on)", 3.0, 0.0),
    ("console side (3 m, 10 deg)", 3.0, 10.0),
    ("rack aisle (4 m, -10 deg)", 4.0, -10.0),
    ("doorway (5 m, 5 deg)", 5.0, 5.0),
]


def main() -> int:
    bundle = repro.load_default_bundle()
    config = KeyAgreementConfig(key_length_bits=256, eta=bundle.eta)
    room = default_environments()[2]
    card = default_tags()[2]  # the chained Alien 9730 card
    staff = repro.default_volunteers()[:3]
    n_per_cell = 6

    print("Server-room access-control audit")
    print("=" * 68)
    print(f"{'position':28s} {'quiet shift':>14s} {'busy shift':>14s}")

    worst = 1.0
    for label, distance, azimuth in POSITIONS:
        geometry = ChannelGeometry(
            user_distance_m=distance, user_azimuth_deg=azimuth
        )
        system = WaveKeySystem(
            bundle, tag=card, environment=room, geometry=geometry,
            agreement_config=config,
        )
        rates = []
        for dynamic in (False, True):
            ok = 0
            for i in range(n_per_cell):
                member = staff[i % len(staff)]
                result = system.establish_key(
                    volunteer=member, dynamic=dynamic,
                    rng=child_rng(31337, label, dynamic, i),
                )
                ok += int(result.success)
            rates.append(ok / n_per_cell)
        # The audit gate is the quiet-shift baseline; busy-shift numbers
        # are reported for operations planning (retries cover the dip).
        worst = min(worst, rates[0])
        print(f"{label:28s} {100 * rates[0]:>13.0f}% "
              f"{100 * rates[1]:>13.0f}%")

    print("-" * 68)
    print("Proximity check: RFID signal spoofing from outside the room")
    spoof = SignalSpoofingAttack(
        pipeline=KeySeedPipeline(bundle),
        agreement_config=config,
        device=default_mobile_devices()[0],
        tag=card,
        environment=room,
    )
    outcome = spoof.run(
        victim=staff[0],
        attacker_style=repro.default_volunteers()[4],
        n_instances=8,
        rng=99,
    )
    print(f"  spoofed sessions: {outcome.n_successes}/{outcome.n_trials} "
          f"granted access (expected: 0)")
    print("=" * 68)

    passed = worst >= 0.3 and outcome.n_successes == 0
    print("AUDIT " + ("PASSED" if passed else "FLAGGED"))
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
