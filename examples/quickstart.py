#!/usr/bin/env python
"""Quickstart: one end-to-end WaveKey key establishment.

A user stands five metres from the RFID antenna holding a Galaxy Watch
and an Alien 9640 service tag in one hand (the paper's default setup,
SVI-B), pauses briefly, and waves for ~2.5 seconds.  Both sides acquire
their modality, derive key-seeds with the pretrained autoencoders, and
run the bidirectional-OT key agreement.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

import repro


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7

    print("Loading the pretrained WaveKey model bundle ...")
    bundle = repro.load_default_bundle()
    print(
        f"  latent width l_f = {bundle.latent_width}, "
        f"N_b = {bundle.n_bins}, eta = {bundle.eta:.3f}, "
        f"seed length l_s = {bundle.seed_length} bits"
    )

    system = repro.WaveKeySystem(bundle)
    print(
        f"Deployment: {system.device.name} + {system.tag.name} in "
        f"{system.environment.name}, user at "
        f"{system.geometry.user_distance_m:.0f} m"
    )

    print("\nPerforming the gesture and establishing a key ...")
    result = system.establish_key(rng=seed)

    mismatch = result.seed_mismatch_rate
    print(f"  seed mismatch S_M vs S_R: {100 * mismatch:.1f}% "
          f"(ECC radius eta = {100 * bundle.eta:.1f}%)")
    print(f"  elapsed (gesture + protocol): {result.elapsed_s:.2f} s")
    if result.success:
        print(f"  established {len(result.key)}-bit key: "
              f"{result.key.to_bytes().hex()}")
        print("SUCCESS: both endpoints hold the same key.")
        return 0
    print(f"FAILED: {result.failure_reason}")
    print("(A small failure rate is expected — rerun with another seed.)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
