#!/usr/bin/env python
"""Rush hour at the access-control server.

The paper's deployment contexts (a line-up service desk, a door reader)
serve *queues* of users, not one at a time.  This example brings up the
concurrent :class:`repro.service.WaveKeyAccessServer` — micro-batched
encoder inference, bounded admission queue, tau-deadline enforcement,
bounded retries — and throws a burst of sessions at it, twice:

1. a comfortable burst the server absorbs completely;
2. an overload burst against a deliberately tiny admission queue, to
   show structured load shedding in action.

Afterwards it prints the server's own telemetry: terminal-state
counters, stage latency histograms, and a reconstructed timeline for
one session pulled from the structured event log.

Run:  python examples/service_rush_hour.py
"""

from __future__ import annotations

import sys

import repro
from repro.service import (
    LoadProfile,
    ServiceConfig,
    WaveKeyAccessServer,
    run_load,
)


def show_report(title, report):
    print(title)
    print("-" * 64)
    for line in report.summary_lines():
        print(f"  {line}")
    print()


def show_metrics(server):
    snapshot = server.metrics.snapshot()
    print("terminal-state counters")
    print("-" * 64)
    for name in sorted(snapshot["counters"]):
        if name.startswith("service."):
            print(f"  {name:26s} {snapshot['counters'][name]}")
    print()
    print("stage latencies (mean)")
    print("-" * 64)
    for name in ("service.queue_wait_s", "service.encode_s",
                 "service.agree_s", "service.total_s"):
        hist = snapshot["histograms"].get(name)
        if hist and hist["count"]:
            print(f"  {name:26s} {hist['mean'] * 1000:8.1f} ms "
                  f"(n={hist['count']})")
    print()


def show_one_timeline(server):
    established = server.events.query(kind="established")
    if not established:
        return
    session_id = established[0].session_id
    print(f"event timeline for {session_id}")
    print("-" * 64)
    for event in server.events.query(session_id=session_id):
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(event.fields.items())
        )
        print(f"  t={event.t_s * 1000:8.1f} ms  {event.kind:14s} {detail}")
    print()


def main() -> int:
    bundle = repro.load_default_bundle()

    print("WaveKey access-control server: rush hour")
    print("=" * 64)
    print()

    config = ServiceConfig(
        workers=2,
        queue_capacity=32,
        max_batch_size=16,
        max_batch_wait_s=0.005,
        max_attempts=2,
    )
    with WaveKeyAccessServer(bundle, config) as server:
        report = run_load(
            server, LoadProfile(sessions=10, rng_seed=2024)
        )
        show_report("burst within capacity (10 sessions)", report)
        show_metrics(server)
        show_one_timeline(server)

    # Same offered load against a deliberately tiny admission queue:
    # the surplus is shed immediately with a structured reason instead
    # of waiting forever.
    tight = ServiceConfig(
        workers=1,
        queue_capacity=2,
        max_batch_size=16,
        max_batch_wait_s=0.005,
        max_attempts=1,
    )
    with WaveKeyAccessServer(bundle, tight) as server:
        report = run_load(
            server, LoadProfile(sessions=10, rng_seed=2025)
        )
        show_report("overload burst (queue capacity 2)", report)
        for record in report.records:
            if record.rejection is not None:
                print(f"  {record.session_id} shed: "
                      f"code={record.rejection.code} "
                      f"depth={record.rejection.queue_depth}/"
                      f"{record.rejection.queue_capacity}")
        print()

    return 0


if __name__ == "__main__":
    sys.exit(main())
