#!/usr/bin/env python
"""Context 1 from the paper: an RFID line-up service system.

Visitors to a service centre take a ticket with a fresh RFID tag and
wait in a queue.  When called, each visitor waves their own phone
together with the ticket; the established ad hoc key then protects the
wireless submission of their paperwork, tied to the ticket number.

This example simulates a morning at the service desk: a queue of
visitors with different phones and gesture styles, fresh tags per
ticket, and a busy (dynamic) lobby — and prints the queue ledger with
per-visitor key fingerprints.

Run:  python examples/lineup_service.py
"""

from __future__ import annotations

import hashlib
import sys

import repro
from repro.core import WaveKeySystem
from repro.imu import default_mobile_devices
from repro.protocol import KeyAgreementConfig
from repro.rfid import default_environments, default_tags
from repro.utils.rng import child_rng


def key_fingerprint(key: repro.BitSequence) -> str:
    """Short display fingerprint of a session key."""
    return hashlib.sha256(key.to_bytes()).hexdigest()[:12]


def main() -> int:
    bundle = repro.load_default_bundle()
    volunteers = repro.default_volunteers()
    devices = default_mobile_devices()
    tags = default_tags()
    lobby = default_environments()[1]
    config = KeyAgreementConfig(key_length_bits=256, eta=bundle.eta)

    print("RFID line-up service: morning queue")
    print("=" * 64)

    served = 0
    retries = 0
    for ticket_number in range(8):
        visitor = volunteers[ticket_number % len(volunteers)]
        phone = devices[ticket_number % len(devices)]
        # Each ticket carries a fresh tag from the dispenser roll.
        tag = tags[ticket_number % len(tags)]
        system = WaveKeySystem(
            bundle, device=phone, tag=tag, environment=lobby,
            agreement_config=config,
        )
        # The lobby is busy: other visitors walk around (dynamic).
        result = None
        for attempt in range(5):
            result = system.establish_key(
                volunteer=visitor, dynamic=True,
                rng=child_rng(2024, ticket_number, attempt),
            )
            if result.success:
                break
            retries += 1
        status = (
            f"key {key_fingerprint(result.key)}"
            if result.success
            else f"FAILED ({result.failure_reason})"
        )
        print(
            f"ticket #{ticket_number:03d}  {visitor.name:>12s}  "
            f"{phone.name:>12s}  {tag.name:>14s}  {status}"
        )
        served += int(result.success)

    print("=" * 64)
    print(f"served {served}/8 visitors ({retries} gesture retries)")
    return 0 if served >= 5 else 1


if __name__ == "__main__":
    sys.exit(main())
