"""Tests for equiprobable bins, gray coding, and key-seed generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import norm

from repro.errors import QuantizationError
from repro.quantize import (
    KeySeedQuantizer,
    equiprobable_normal_boundaries,
    gray_bits_per_symbol,
    gray_code_table,
    gray_decode,
    gray_encode,
    quantize_normal,
)


class TestBoundaries:
    def test_equiprobable_mass(self):
        """Each bin captures 1/N_b of the standard normal mass (Eq. 1)."""
        for n_bins in (4, 8, 9, 15):
            b = equiprobable_normal_boundaries(n_bins)
            masses = np.diff(
                np.concatenate([[0.0], norm.cdf(b), [1.0]])
            )
            np.testing.assert_allclose(masses, 1.0 / n_bins, atol=1e-12)

    def test_symmetry(self):
        b = equiprobable_normal_boundaries(8)
        np.testing.assert_allclose(b, -b[::-1], atol=1e-12)

    def test_validation(self):
        with pytest.raises(QuantizationError):
            equiprobable_normal_boundaries(1)


class TestQuantizeNormal:
    def test_bin_indices_in_range(self):
        rng = np.random.default_rng(0)
        idx = quantize_normal(rng.normal(size=1000), 9)
        assert idx.min() >= 0 and idx.max() <= 8

    def test_uniform_occupancy_for_normal_input(self):
        rng = np.random.default_rng(1)
        idx = quantize_normal(rng.normal(size=200_000), 8)
        counts = np.bincount(idx, minlength=8) / idx.size
        np.testing.assert_allclose(counts, 1 / 8, atol=0.01)

    def test_extreme_values(self):
        idx = quantize_normal(np.array([-100.0, 0.0, 100.0]), 9)
        assert idx[0] == 0 and idx[2] == 8

    def test_rejects_nan(self):
        with pytest.raises(QuantizationError):
            quantize_normal(np.array([np.nan]), 4)


class TestGrayCode:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=100)
    def test_decode_inverts_encode(self, i):
        assert gray_decode(gray_encode(i)) == i

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=100)
    def test_adjacent_codes_differ_one_bit(self, i):
        assert bin(gray_encode(i) ^ gray_encode(i + 1)).count("1") == 1

    def test_table_rows_unique(self):
        table = gray_code_table(9)
        rows = {tuple(r) for r in table}
        assert len(rows) == 9

    def test_table_adjacent_rows_one_bit(self):
        table = gray_code_table(13)
        diffs = np.abs(np.diff(table.astype(int), axis=0)).sum(axis=1)
        assert np.all(diffs == 1)

    def test_bits_per_symbol(self):
        assert gray_bits_per_symbol(8) == 3
        assert gray_bits_per_symbol(9) == 4
        assert gray_bits_per_symbol(2) == 1

    def test_validation(self):
        with pytest.raises(QuantizationError):
            gray_bits_per_symbol(1)
        with pytest.raises(QuantizationError):
            gray_encode(-1)


class TestKeySeedQuantizer:
    def test_seed_length_formula(self):
        q = KeySeedQuantizer(8)
        assert q.seed_length(12) == 36  # whole-bit Eq. 2
        assert KeySeedQuantizer(9).seed_length(12) == 48

    def test_quantize_output_length(self):
        q = KeySeedQuantizer(8)
        seed = q.quantize(np.zeros(12))
        assert len(seed) == 36

    def test_close_values_close_seeds(self):
        """Adjacent-bin perturbations flip at most one bit per element —
        the gray-coding property the whole scheme leans on."""
        q = KeySeedQuantizer(9)
        rng = np.random.default_rng(2)
        f = rng.normal(size=12)
        boundaries = q.boundaries
        # Nudge each element to just across its nearest boundary.
        g = f.copy()
        for i in range(12):
            nearest = boundaries[np.argmin(np.abs(boundaries - f[i]))]
            g[i] = nearest + 1e-6 * np.sign(nearest - f[i])
        s_f = q.quantize(f)
        s_g = q.quantize(g)
        idx_f = q.bin_indices(f)
        idx_g = q.bin_indices(g)
        moved = int(np.sum(np.abs(idx_f - idx_g) == 1))
        same = int(np.sum(idx_f == idx_g))
        assert moved + same == 12  # nobody jumped two bins
        assert s_f.hamming_distance(s_g) == moved

    def test_identical_inputs_identical_seeds(self):
        q = KeySeedQuantizer(8)
        f = np.random.default_rng(3).normal(size=12)
        assert q.quantize(f) == q.quantize(f.copy())

    def test_marginally_uniform_bits_for_power_of_two(self):
        """With N_b = 8 the seed bits are unbiased — the property that
        makes the key-seed-chains pass NIST (see DESIGN.md deviation
        note on N_b = 9)."""
        q = KeySeedQuantizer(8)
        rng = np.random.default_rng(4)
        bits = np.concatenate(
            [q.quantize(rng.normal(size=12)).array for _ in range(500)]
        )
        assert abs(bits.mean() - 0.5) < 0.02

    def test_validation(self):
        with pytest.raises(QuantizationError):
            KeySeedQuantizer(1)
        with pytest.raises(QuantizationError):
            KeySeedQuantizer(8).seed_length(0)
