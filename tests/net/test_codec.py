"""Codec round-trip and size-reconciliation tests.

Property-style sweeps over every wire message type: encode -> frame ->
bytes -> frame -> decode must be the identity, encoded frame length
must equal ``wire_size_bytes() + framing_overhead()`` for the protocol
dataclasses, and every malformed input (truncation, trailing bytes,
unknown types, oversized frames) must raise the right typed error.
"""

import numpy as np
import pytest

from repro.crypto.ot import OTCiphertexts
from repro.errors import DecodeError, FrameTooLarge
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    PROTOCOL_VERSION,
    Accept,
    ConfirmAck,
    ErrorFrame,
    Frame,
    FrameAssembler,
    FrameType,
    Hello,
    RecordFrame,
    ResumeAccept,
    ResumeRequest,
    RevokeNotice,
    RoundResult,
    SeedGrant,
    StatsRequest,
    StatsResponse,
    TelemetryRequest,
    TelemetryResponse,
    TicketGrant,
    Verdict,
    decode_payload,
    encode_message,
    frame_to_bytes,
    framing_overhead,
    read_frame,
)
from repro.protocol.messages import (
    ConfirmationResponse,
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
    ReconciliationChallenge,
)
from repro.obs.tracing import TraceContext
from repro.utils.bits import BitSequence


def roundtrip(message):
    """Full wire loop: message -> frame -> bytes -> frame -> message."""
    data = frame_to_bytes(encode_message(message))
    consumed = [0]

    def recv_exactly(n):
        chunk = data[consumed[0]:consumed[0] + n]
        assert len(chunk) == n, "reader ran past the encoded frame"
        consumed[0] += n
        return chunk

    frame = read_frame(recv_exactly)
    assert consumed[0] == len(data), "frame did not consume all bytes"
    return decode_payload(frame)


# extreme int sizes: zero, one, a 4096-bit monster, and a u16-boundary
# neighbourhood; realistic group elements live far inside this range
EXTREME_INTS = (0, 1, 255, 256, 65535, 65536, (1 << 512) - 1, 1 << 4095)


def sample_messages():
    rng = np.random.default_rng(0)
    return [
        OTAnnounce(sender="mobile", elements=EXTREME_INTS),
        OTAnnounce(sender="m", elements=(7,)),
        OTResponse(sender="server", elements=tuple(reversed(EXTREME_INTS))),
        OTCiphertextBatch(
            sender="mobile",
            pairs=(
                OTCiphertexts(e0=b"", e1=b"x"),
                OTCiphertexts(e0=bytes(range(64)), e1=bytes(64)),
            ),
        ),
        ReconciliationChallenge(
            sender="mobile",
            sketch=BitSequence.random(133, rng),  # non-byte-aligned
            nonce=bytes(range(16)),
        ),
        ReconciliationChallenge(
            sender="mobile",
            sketch=BitSequence([1]),
            nonce=b"\x00" * 8,
        ),
        ConfirmationResponse(sender="server", tag=bytes(32)),
        Hello(sender="mobile", rng_seed=0),
        Hello(sender="mobile-é", rng_seed=(1 << 62) + 3, dynamic=True),
        Accept(
            sender="server", session_id="s000042",
            key_length_bits=256, eta=0.0417,
        ),
        SeedGrant(attempt=3, seed=BitSequence.random(31, rng)),
        ConfirmAck(ok=True, tag=bytes(range(32))),
        ConfirmAck(ok=False, tag=b""),
        RoundResult(success=False, reason="agreement: HMAC mismatch"),
        RoundResult(success=True),
        Verdict(state="established", attempts=2, session_id="s000042"),
        Verdict(state="failed", attempts=3, reason="keys differ"),
        ErrorFrame(code="busy", detail="queue 32/32"),
        ErrorFrame(code="version"),
        StatsRequest(),
        StatsResponse(payload_json="{}"),
        StatsResponse(
            payload_json='{"role": "backend", "snapshot": '
                         '{"counters": {"né": 3}}}'
        ),
        TicketGrant(
            ticket_id="a" * 32, expires_at=1.75e9, lifetime_s=3600.0
        ),
        ResumeRequest(
            sender="mobile", ticket_id="b" * 32,
            client_nonce=bytes(range(16)),
        ),
        ResumeAccept(
            sender="server", channel_id="c" * 32,
            server_nonce=bytes(16), tag=bytes(range(32)),
        ),
        RecordFrame(seq=0, ciphertext=b"", tag=bytes(32)),
        RecordFrame(
            seq=(1 << 64) - 1, ciphertext=bytes(range(256)) * 4,
            tag=bytes(reversed(range(32))),
        ),
        RevokeNotice(ticket_id="d" * 32, tag=bytes(32)),
    ]


@pytest.mark.parametrize(
    "message", sample_messages(), ids=lambda m: type(m).__name__
)
def test_roundtrip_identity(message):
    assert roundtrip(message) == message


def test_hello_carries_version():
    decoded = roundtrip(Hello(sender="mobile", rng_seed=5))
    assert decoded.version == PROTOCOL_VERSION


@pytest.mark.parametrize("value", EXTREME_INTS)
def test_uint_extremes_roundtrip(value):
    # Integers coerce to their minimal big-endian encoding on message
    # construction; the wire must carry those bytes unchanged.
    message = OTAnnounce(sender="a", elements=(value,))
    expected = value.to_bytes(max(1, (value.bit_length() + 7) // 8), "big")
    assert message.elements == (expected,)
    assert roundtrip(message).elements == (expected,)


def test_encoded_size_matches_wire_model():
    """The codec's frame length is exactly the latency model's
    ``wire_size_bytes`` plus the documented framing overhead."""
    rng = np.random.default_rng(1)
    protocol_messages = [
        m for m in sample_messages()
        if isinstance(
            m,
            (
                OTAnnounce, OTResponse, OTCiphertextBatch,
                ReconciliationChallenge, ConfirmationResponse,
            ),
        )
    ]
    # plus a realistically-sized batch
    protocol_messages.append(OTAnnounce(
        sender="mobile",
        elements=tuple(
            int(x) for x in rng.integers(1, 1 << 62, size=48)
        ),
    ))
    assert protocol_messages
    for message in protocol_messages:
        encoded = frame_to_bytes(encode_message(message))
        assert (
            len(encoded)
            == message.wire_size_bytes() + framing_overhead(message)
        ), type(message).__name__


def test_truncated_payload_raises_decode_error():
    for message in sample_messages():
        frame = encode_message(message)
        if not frame.payload:
            continue
        truncated = Frame(frame.type, frame.payload[:-1])
        with pytest.raises(DecodeError):
            decode_payload(truncated)


def test_trailing_bytes_raise_decode_error():
    frame = encode_message(RoundResult(success=True))
    with pytest.raises(DecodeError, match="trailing"):
        decode_payload(Frame(frame.type, frame.payload + b"\x00"))


def test_unknown_frame_type_raises_decode_error():
    with pytest.raises(DecodeError, match="unknown frame type"):
        decode_payload(Frame(0x7F, b""))


def test_empty_uint_field_raises_decode_error():
    # u16 length prefix of 0 is never produced by the encoder
    payload = b"\x00\x01a" + b"\x00\x01" + b"\x00\x00"
    with pytest.raises(DecodeError):
        decode_payload(Frame(FrameType.OT_ANNOUNCE, payload))


def _reader_for(data):
    consumed = [0]

    def recv_exactly(n):
        chunk = data[consumed[0]:consumed[0] + n]
        consumed[0] += n
        return chunk

    return recv_exactly


def test_read_frame_rejects_oversized_frames():
    message = OTAnnounce(sender="mobile", elements=(1 << 512,))
    data = frame_to_bytes(encode_message(message))
    with pytest.raises(FrameTooLarge):
        read_frame(_reader_for(data), max_frame_bytes=16)
    # the limit is checked before the body is read: a hostile length
    # prefix cannot make the receiver allocate
    hostile = b"\xff\xff\xff\xff" + b"\x10"
    with pytest.raises(FrameTooLarge):
        read_frame(_reader_for(hostile), DEFAULT_MAX_FRAME_BYTES)


def test_read_frame_rejects_zero_length_body():
    with pytest.raises(DecodeError):
        read_frame(_reader_for(b"\x00\x00\x00\x00"))


def test_header_constant_matches_layout():
    frame = encode_message(ConfirmAck(ok=True, tag=b""))
    data = frame_to_bytes(frame)
    assert len(data) == HEADER_BYTES + len(frame.payload)


# -- frame-size boundary: exactly-at-limit accepted, limit+1 rejected --------


def _record_with_payload_bytes(total_payload: int) -> RecordFrame:
    """A RecordFrame whose *encoded* payload is exactly ``total_payload``
    bytes, computed from the encoder itself so the test tracks any
    future layout change."""
    base = len(encode_message(
        RecordFrame(seq=0, ciphertext=b"", tag=bytes(32))
    ).payload)
    assert total_payload >= base
    return RecordFrame(
        seq=0, ciphertext=bytes(total_payload - base), tag=bytes(32)
    )


def test_frame_exactly_at_limit_accepted():
    message = _record_with_payload_bytes(DEFAULT_MAX_FRAME_BYTES)
    frame = encode_message(message)
    assert len(frame.payload) == DEFAULT_MAX_FRAME_BYTES
    decoded = decode_payload(
        read_frame(_reader_for(frame_to_bytes(frame)))
    )
    assert decoded == message


def test_frame_one_over_limit_rejected():
    frame = encode_message(
        _record_with_payload_bytes(DEFAULT_MAX_FRAME_BYTES + 1)
    )
    with pytest.raises(FrameTooLarge):
        read_frame(_reader_for(frame_to_bytes(frame)))


def test_assembler_boundary_matches_read_frame():
    """The streaming assembler enforces the identical boundary: the
    at-limit frame parses, one byte more poisons the stream."""
    at_limit = encode_message(
        _record_with_payload_bytes(DEFAULT_MAX_FRAME_BYTES)
    )
    assembler = FrameAssembler()
    assembler.feed(frame_to_bytes(at_limit))
    parsed = assembler.next_frame()
    assert parsed is not None and parsed.payload == at_limit.payload

    over = encode_message(
        _record_with_payload_bytes(DEFAULT_MAX_FRAME_BYTES + 1)
    )
    assembler = FrameAssembler()
    assembler.feed(frame_to_bytes(over))
    with pytest.raises(FrameTooLarge):
        assembler.next_frame()
    assert assembler.broken


@pytest.mark.parametrize(
    "message",
    [
        ResumeRequest(sender="m", ticket_id="t" * 32,
                      client_nonce=bytes(16)),
        RevokeNotice(ticket_id="t" * 32, tag=bytes(32)),
        TicketGrant(ticket_id="t" * 32, expires_at=0.0, lifetime_s=1.0),
        ResumeAccept(sender="s", channel_id="c" * 32,
                     server_nonce=bytes(16), tag=bytes(32)),
    ],
    ids=lambda m: type(m).__name__,
)
def test_access_frames_fit_well_under_limit(message):
    """Control-plane access frames are small: none should come within
    an order of magnitude of the frame cap."""
    frame = encode_message(message)
    assert len(frame.payload) < DEFAULT_MAX_FRAME_BYTES // 1024


# -- trace-context tail: backward compatibility and telemetry frames ---------


SAMPLE_CONTEXT = TraceContext(
    trace_id="t0ffee-0001",
    span_id="s0ffee-000042",
    sampled=True,
    service="mobile-é",
)


def _traceable_messages(context):
    return [
        Hello(sender="mobile", rng_seed=17, trace_context=context),
        ResumeRequest(
            sender="mobile", ticket_id="b" * 32,
            client_nonce=bytes(range(16)), trace_context=context,
        ),
    ]


@pytest.mark.parametrize(
    "message", _traceable_messages(SAMPLE_CONTEXT),
    ids=lambda m: type(m).__name__,
)
def test_trace_context_roundtrips(message):
    decoded = roundtrip(message)
    assert decoded == message
    assert decoded.trace_context == SAMPLE_CONTEXT


@pytest.mark.parametrize(
    "message", _traceable_messages(None), ids=lambda m: type(m).__name__
)
def test_contextless_encoding_is_byte_identical_to_pre_trace(message):
    """A peer that never sets ``trace_context`` produces exactly the
    old wire bytes: no marker, no empty strings, nothing."""
    with_context = dataclasses_replace(message, SAMPLE_CONTEXT)
    bare = encode_message(message).payload
    traced = encode_message(with_context).payload
    assert traced.startswith(bare), "tail must be strictly appended"
    assert len(traced) > len(bare)
    # the bare payload ends where the old format ended: decoding it
    # yields trace_context=None (old peer -> new decoder interop)
    assert decode_payload(encode_message(message)).trace_context is None


def dataclasses_replace(message, context):
    import dataclasses

    return dataclasses.replace(message, trace_context=context)


@pytest.mark.parametrize(
    "message",
    _traceable_messages(SAMPLE_CONTEXT) + _traceable_messages(None),
    ids=lambda m: (
        f"{type(m).__name__}-"
        f"{'traced' if m.trace_context else 'bare'}"
    ),
)
def test_trace_context_wire_size_reconciles(message):
    """``wire_size_bytes`` stays exact with and without the tail."""
    assert len(encode_message(message).payload) == message.wire_size_bytes()


def test_unknown_trace_marker_raises_decode_error():
    frame = encode_message(Hello(sender="m", rng_seed=1))
    with pytest.raises(DecodeError, match="trace-context marker"):
        decode_payload(Frame(frame.type, frame.payload + b"\x7f"))


def test_truncated_trace_context_raises_decode_error():
    frame = encode_message(
        Hello(sender="m", rng_seed=1, trace_context=SAMPLE_CONTEXT)
    )
    for cut in range(len(frame.payload) - 1,
                     len(frame.payload) - 8, -1):
        with pytest.raises(DecodeError):
            decode_payload(Frame(frame.type, frame.payload[:cut]))


# -- group-id block: OT group negotiation in Hello ----------------------------


def test_hello_group_id_roundtrips():
    decoded = roundtrip(
        Hello(sender="mobile", rng_seed=3, group_id="curve25519")
    )
    assert decoded.group_id == "curve25519"


def test_hello_group_id_roundtrips_alongside_trace_context():
    message = Hello(
        sender="mobile", rng_seed=3,
        trace_context=SAMPLE_CONTEXT, group_id="curve25519",
    )
    decoded = roundtrip(message)
    assert decoded.group_id == "curve25519"
    assert decoded.trace_context == SAMPLE_CONTEXT


def test_default_group_hello_is_byte_identical():
    """A client on the default MODP group sends no group block at all —
    the frame is byte-identical to the pre-negotiation wire format."""
    bare = encode_message(Hello(sender="mobile", rng_seed=17)).payload
    grouped = encode_message(
        Hello(sender="mobile", rng_seed=17, group_id="curve25519")
    ).payload
    assert grouped.startswith(bare), "group block must be strictly appended"
    assert len(grouped) > len(bare)
    assert decode_payload(encode_message(
        Hello(sender="mobile", rng_seed=17)
    )).group_id == ""


def test_hello_group_id_wire_size_reconciles():
    for group_id in ("", "curve25519"):
        message = Hello(sender="mobile", rng_seed=17, group_id=group_id)
        assert (
            len(encode_message(message).payload)
            == message.wire_size_bytes()
        )


def test_duplicate_group_block_raises():
    frame = encode_message(
        Hello(sender="m", rng_seed=1, group_id="curve25519")
    )
    block = b"\x02" + len(b"curve25519").to_bytes(2, "big") + b"curve25519"
    assert frame.payload.endswith(block)
    with pytest.raises(DecodeError, match="duplicate group-id"):
        decode_payload(Frame(frame.type, frame.payload + block))


def test_empty_group_block_raises():
    frame = encode_message(Hello(sender="m", rng_seed=1))
    with pytest.raises(DecodeError, match="empty group-id"):
        decode_payload(
            Frame(frame.type, frame.payload + b"\x02\x00\x00")
        )


@pytest.mark.parametrize(
    "message",
    [
        TelemetryRequest(),
        TelemetryRequest(drain=True),
        TelemetryResponse(payload_json="{}"),
        TelemetryResponse(
            payload_json='{"schema": "repro.telemetry/1", '
                         '"service": "backend-é", "spans": []}'
        ),
    ],
    ids=["peek", "drain", "empty-doc", "utf8-doc"],
)
def test_telemetry_frames_roundtrip(message):
    assert roundtrip(message) == message


def test_telemetry_response_rejects_bad_utf8():
    # u8 version + blob32(u32 length + body) with an invalid utf-8 body
    broken = bytes([PROTOCOL_VERSION]) + b"\x00\x00\x00\x02\xff\xfe"
    with pytest.raises(DecodeError, match="utf-8"):
        decode_payload(Frame(FrameType.TELEMETRY_RESPONSE, broken))


def test_telemetry_frame_types_are_distinct():
    assert encode_message(TelemetryRequest()).type == (
        FrameType.TELEMETRY_REQUEST
    )
    assert encode_message(
        TelemetryResponse(payload_json="{}")
    ).type == FrameType.TELEMETRY_RESPONSE
    assert FrameType.TELEMETRY_REQUEST != FrameType.STATS_REQUEST
