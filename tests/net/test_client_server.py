"""Loopback end-to-end tests: real client, real TCP server.

Each test runs a full key establishment (or a controlled failure)
between :class:`WaveKeyNetClient` and :class:`WaveKeyTCPServer` over
127.0.0.1, with pinned encoder seeds so the outcomes are deterministic.
"""

import socket

import pytest

from repro.errors import ProtocolError, TransportError
from repro.net import (
    NetClientConfig,
    WaveKeyNetClient,
    WaveKeyTCPServer,
)
from repro.net.codec import Hello
from repro.net.connection import FrameConnection, connect
from repro.obs import MetricsRegistry, Tracer
from repro.protocol.agreement import KeyAgreementConfig
from repro.protocol.messages import OTAnnounce
from repro.service import SessionState

from tests.net.conftest import (
    make_access_server,
    matched_seed,
    mismatched_seeds,
    pin_seeds,
)

CLIENT_CFG = NetClientConfig(
    read_timeout_s=5.0, max_retries=1, backoff_initial_s=0.01
)


def test_establishment_over_loopback(tiny_bundle):
    """Acceptance: matching keys and a verified HMAC over a real
    socket, with span trees and metrics on both endpoints."""
    metrics = MetricsRegistry()
    tracer = Tracer()
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access) as tcp:
            host, port = tcp.address
            client = WaveKeyNetClient(
                host, port, CLIENT_CFG, metrics=metrics, tracer=tracer
            )
            result = client.establish(rng_seed=11)

            assert result.success
            assert result.state == "established"
            assert result.attempts == 1
            assert len(result.key) == 256
            assert result.rounds and result.rounds[-1].success

            # both sides hold the same key
            record = access.sessions.get(result.session_id)
            assert record.state is SessionState.ESTABLISHED
            assert record.key == result.key
            assert tcp.sessions_served == 1

        # client-side observability: a span tree rooted at net.establish
        # with the protocol stages underneath, and wire metrics
        spans = {s.name for s in tracer.finished_spans()}
        assert {"net.establish", "net.connect", "net.hello",
                "net.round", "net.ot.announce"} <= spans
        snapshot = metrics.snapshot()["counters"]
        assert snapshot['net.frames_sent{endpoint="client"}'] >= 5
        assert snapshot['net.bytes_received{endpoint="client"}'] > 0

    # server-side observability: wire counters live next to the
    # service metrics in the shared registry
    server_counters = access.metrics.snapshot()["counters"]
    assert server_counters["net.server.sessions"] == 1
    assert server_counters['net.frames_received{endpoint="server"}'] >= 5


def test_mismatched_seeds_fail_with_round_results(tiny_bundle):
    base, flipped = mismatched_seeds()
    with make_access_server(tiny_bundle, max_attempts=2) as access:
        pin_seeds(access, base, flipped)
        with WaveKeyTCPServer(access) as tcp:
            host, port = tcp.address
            result = WaveKeyNetClient(
                host, port, CLIENT_CFG
            ).establish(rng_seed=12)

    assert not result.success
    assert result.state == "failed"
    assert result.attempts == 2
    assert result.key is None
    assert len(result.rounds) == 2
    assert not any(r.success for r in result.rounds)
    assert result.failure_reason


def test_load_shedding_maps_to_busy_error(tiny_bundle):
    """With capacity 0... impossible; instead: fill the queue with a
    stalled worker so a second client is shed with a structured
    reason."""
    with make_access_server(
        tiny_bundle, workers=1, queue_capacity=1
    ) as access:
        pin_seeds(access, matched_seed())

        # Stall the single worker: the first client connects and then
        # never sends its announce, so the worker blocks in the round
        # while the next submissions overflow the queue.
        with WaveKeyTCPServer(access, read_timeout_s=5.0) as tcp:
            host, port = tcp.address
            stall = connect(host, port, read_timeout_s=5.0)
            try:
                stall.send(Hello(sender="staller", rng_seed=1))
                stall.recv()  # Accept: the worker is now in our round
                stall.recv()  # SeedGrant
                # One more session saturates the queue (capacity 1)...
                filler = connect(host, port, read_timeout_s=5.0)
                filler.send(Hello(sender="filler", rng_seed=2))
                assert filler.recv().session_id  # Accept (queued)
                # ...so the next client is shed.
                result = WaveKeyNetClient(
                    host, port, CLIENT_CFG
                ).establish(rng_seed=3)
                assert not result.success
                assert result.state == "shed"
                assert "queue_full" in result.failure_reason
                filler.close()
            finally:
                stall.close()
    assert access.metrics.snapshot()["counters"]["net.server.shed"] == 1


def test_spoofed_protocol_sender_is_rejected(tiny_bundle):
    """A message claiming a different sender than the hello identity
    fails the round (anti-spoofing on the wire)."""
    with make_access_server(tiny_bundle, max_attempts=1) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, read_timeout_s=5.0) as tcp:
            host, port = tcp.address
            conn = connect(host, port, read_timeout_s=5.0)
            try:
                conn.send(Hello(sender="mobile", rng_seed=4))
                conn.recv()  # Accept
                conn.recv()  # SeedGrant
                conn.send(OTAnnounce(sender="mallory", elements=(5,)))
                result = conn.recv()  # RoundResult
            finally:
                conn.close()
    assert not result.success
    assert "sender mismatch" in result.reason


def test_version_mismatch_rejected(tiny_bundle):
    with make_access_server(tiny_bundle) as access:
        with WaveKeyTCPServer(access, read_timeout_s=5.0) as tcp:
            host, port = tcp.address
            conn = connect(host, port, read_timeout_s=5.0)
            try:
                conn.send(Hello(sender="mobile", rng_seed=1, version=99))
                error = conn.recv()
            finally:
                conn.close()
    assert error.code == "version"


def test_client_identity_cannot_claim_server_name(tiny_bundle):
    with make_access_server(tiny_bundle) as access:
        with WaveKeyTCPServer(
            access, name="server", read_timeout_s=5.0
        ) as tcp:
            host, port = tcp.address
            conn = connect(host, port, read_timeout_s=5.0)
            try:
                conn.send(Hello(sender="server", rng_seed=1))
                error = conn.recv()
            finally:
                conn.close()
    assert error.code == "identity"


def test_garbage_bytes_do_not_kill_the_server(tiny_bundle):
    """A connection speaking not-the-protocol is dropped; the server
    keeps serving real clients afterwards."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, read_timeout_s=2.0) as tcp:
            host, port = tcp.address
            raw = socket.create_connection((host, port))
            raw.sendall(b"\xff" * 64)
            raw.close()
            result = WaveKeyNetClient(
                host, port, CLIENT_CFG
            ).establish(rng_seed=13)
    assert result.success
    counters = access.metrics.snapshot()["counters"]
    assert counters.get("net.server.transport_errors", 0) >= 1


def test_connect_refused_raises_typed_transport_error():
    # grab a port that is certainly closed
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    client = WaveKeyNetClient(
        "127.0.0.1", port,
        NetClientConfig(max_retries=1, backoff_initial_s=0.01),
    )
    with pytest.raises(TransportError):
        client.establish(rng_seed=1)


def test_concurrent_networked_sessions(tiny_bundle):
    import threading

    # Six clients crafting OT group arithmetic at once contend for CPU,
    # and that wall time bills the server's protocol clock — relax the
    # announce deadline so this test checks concurrency, not the
    # machine's core count (deadline behavior is pinned in test_proxy).
    relaxed = KeyAgreementConfig(eta=tiny_bundle.eta, tau_s=30.0)
    with make_access_server(
        tiny_bundle, workers=3, agreement_config=relaxed
    ) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access) as tcp:
            host, port = tcp.address
            results = []
            lock = threading.Lock()

            def run(i):
                result = WaveKeyNetClient(
                    host, port, CLIENT_CFG
                ).establish(rng_seed=100 + i)
                with lock:
                    results.append(result)

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

    assert len(results) == 6
    assert all(r.success for r in results)
    assert len({r.session_id for r in results}) == 6
