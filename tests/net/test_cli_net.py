"""CLI wiring test: ``serve --listen`` + ``establish --connect``.

Runs the real CLI entry points against each other over loopback (the
server in a thread, the client in the test thread), driving the full
pretrained-bundle path end to end.
"""

import io
import threading
import time

from repro.cli import main


def test_serve_listen_and_establish_connect(tmp_path):
    port_file = tmp_path / "port.txt"
    trace_file = tmp_path / "trace.jsonl"
    metrics_file = tmp_path / "metrics.json"
    server_out = io.StringIO()
    server_rc = []

    def run_server():
        server_rc.append(main(
            [
                "serve", "--listen", "127.0.0.1:0",
                "--port-file", str(port_file),
                "--sessions", "1",
                "--metrics-out", str(tmp_path / "server-metrics.json"),
            ],
            out=server_out,
        ))

    server = threading.Thread(target=run_server, daemon=True)
    server.start()

    deadline = time.monotonic() + 60.0
    while not port_file.exists() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert port_file.exists(), server_out.getvalue()
    address = port_file.read_text().strip()

    client_out = io.StringIO()
    rc = main(
        [
            "establish", "--connect", address, "--seed", "7",
            "--trace-out", str(trace_file),
            "--metrics-out", str(metrics_file),
        ],
        out=client_out,
    )
    text = client_out.getvalue()
    assert rc in (0, 1), text  # agreement may fail; transport must not
    assert "session s" in text
    if rc == 0:
        assert "key (256 bits):" in text

    server.join(timeout=60.0)
    assert server_rc == [0], server_out.getvalue()
    assert "served 1 networked sessions" in server_out.getvalue()
    # observability artifacts from both endpoints
    assert trace_file.exists() and trace_file.stat().st_size > 0
    assert metrics_file.exists()
    assert (tmp_path / "server-metrics.json").exists()
