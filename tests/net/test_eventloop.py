"""Event-loop tier tests: the loop itself, the bounded outbound
buffer, and the loop-health metrics observable over loopback.

The protocol-level behavior of the event-loop server is pinned by the
pre-existing suites (``test_client_server``, ``test_proxy``) which run
against it unchanged; this file covers what is *new*: cross-thread
scheduling, timers, callback isolation, backpressure shedding, the
``net.conn.open`` gauge, and the ``net.loop.*`` series.
"""

import socket
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.net import (
    NetClientConfig,
    OutboundBuffer,
    WaveKeyNetClient,
    WaveKeyTCPServer,
)
from repro.net.codec import Hello
from repro.net.connection import (
    SEND_CLOSED,
    SEND_OK,
    SEND_OVERFLOW,
    connect,
)
from repro.net.eventloop import EVENT_READ, EventLoop
from repro.obs import MetricsRegistry

from tests.net.conftest import make_access_server, matched_seed, pin_seeds

CLIENT_CFG = NetClientConfig(
    read_timeout_s=5.0, max_retries=1, backoff_initial_s=0.01
)


def _wait_for(predicate, timeout_s=5.0, detail="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"{detail} not met within {timeout_s}s")


# -- EventLoop core ----------------------------------------------------------


def test_call_soon_runs_callbacks_on_the_loop_thread():
    loop = EventLoop(name="test-loop").start()
    try:
        seen = []
        done = threading.Event()
        loop.call_soon(
            lambda: (seen.append(threading.current_thread().name),
                     done.set())
        )
        assert done.wait(2.0)
        assert seen == ["test-loop"]
    finally:
        loop.stop()


def test_call_later_fires_and_cancel_suppresses():
    loop = EventLoop().start()
    try:
        fired = threading.Event()
        cancelled_fired = threading.Event()
        handles = []

        def arm():
            loop.call_later(0.05, fired.set)
            handles.append(loop.call_later(0.3, cancelled_fired.set))

        loop.call_soon(arm)
        _wait_for(lambda: handles, detail="timers armed")
        handles[0].cancel()
        assert fired.wait(2.0)
        time.sleep(0.5)
        assert not cancelled_fired.is_set()
    finally:
        loop.stop()


def test_selector_mutation_off_the_loop_thread_is_rejected():
    loop = EventLoop().start()
    left, right = socket.socketpair()
    try:
        with pytest.raises(ServiceError):
            loop.register(left, EVENT_READ, lambda mask: None)
    finally:
        left.close()
        right.close()
        loop.stop()


def test_callback_exceptions_are_counted_not_fatal():
    metrics = MetricsRegistry()
    loop = EventLoop(metrics=metrics).start()
    try:
        loop.call_soon(lambda: 1 / 0)
        alive = threading.Event()
        loop.call_soon(alive.set)
        assert alive.wait(2.0)  # the loop survived the exception
        assert (
            metrics.snapshot()["counters"]["net.loop.callback_errors"] == 1
        )
    finally:
        loop.stop()


def test_wake_after_stop_never_writes_into_a_recycled_fd():
    """A late wake() must be a no-op once the loop is stopped.

    stop() closes the self-pipe, so the OS is free to hand its fd
    number to the next socket the process opens; a wake() racing that
    teardown used to ``os.write(b"\\x00")`` into whatever inherited
    the number, silently injecting zero bytes into an unrelated TCP
    stream (seen as frame desync when backends are killed under load).
    """
    loop = EventLoop(name="late-wake").start()
    loop.stop()
    assert loop._wake_w == -1
    # Grab fresh fds right away — on POSIX the lowest free numbers are
    # reused, so these are very likely the pipe's old numbers.
    left, right = socket.socketpair()
    try:
        for _ in range(8):
            loop.wake()            # must not raise, must not write
            loop.call_soon(lambda: None)
        left.setblocking(False)
        right.setblocking(False)
        for sock in (left, right):
            with pytest.raises(BlockingIOError):
                sock.recv(64)      # no stray 0x00 landed in either end
    finally:
        left.close()
        right.close()


def test_wakeup_latency_histogram_measures_cross_thread_handoff():
    metrics = MetricsRegistry()
    loop = EventLoop(metrics=metrics).start()
    try:
        done = threading.Event()
        for _ in range(8):
            loop.call_soon(lambda: None)
        loop.call_soon(done.set)
        assert done.wait(2.0)
        hist = metrics.snapshot()["histograms"]["net.loop.wakeup_latency_s"]
        assert hist["count"] > 0
        assert hist["max"] < 1.0  # loopback handoffs are not seconds
    finally:
        loop.stop()


# -- OutboundBuffer ----------------------------------------------------------


def test_outbound_buffer_enforces_bound_and_force_bypasses_it():
    buf = OutboundBuffer(max_pending_bytes=10)
    assert buf.append(b"12345") == SEND_OK
    assert buf.append(b"123456") == SEND_OVERFLOW
    assert buf.pending == 5  # the overflowing append was not queued
    assert buf.append(b"123456", force=True) == SEND_OK
    assert buf.pending == 11
    buf.close()
    assert buf.append(b"x") == SEND_CLOSED


def test_outbound_buffer_partial_writes_drain_in_order():
    left, right = socket.socketpair()
    left.setblocking(False)
    left.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
    try:
        buf = OutboundBuffer()
        payload = bytes(range(256)) * 2048  # 512 KiB >> the send buffer
        assert buf.append(payload, force=True) == SEND_OK
        received = bytearray()
        while buf.pending:
            if buf.flush(left):
                break
            received += right.recv(65536)
        while len(received) < len(payload):
            received += right.recv(65536)
        assert bytes(received) == payload
        assert buf.pending == 0
    finally:
        left.close()
        right.close()


# -- loop-health metrics over loopback ---------------------------------------


def test_conn_gauge_and_loop_series_over_loopback(tiny_bundle):
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access) as tcp:
            host, port = tcp.address

            def open_conns():
                return access.metrics.snapshot().get("gauges", {}).get(
                    "net.conn.open", 0
                )

            idle = connect(host, port, read_timeout_s=5.0)
            _wait_for(
                lambda: open_conns() == 1, detail="gauge sees idle conn"
            )

            result = WaveKeyNetClient(
                host, port, CLIENT_CFG
            ).establish(rng_seed=31)
            assert result.success

            idle.close()
            _wait_for(
                lambda: open_conns() == 0, detail="gauge drains on close"
            )

            snap = access.metrics.snapshot()
            assert snap["counters"]["net.loop.ticks"] > 0
            assert (
                snap["histograms"]["net.loop.wakeup_latency_s"]["count"] > 0
            )
            assert (
                snap["histograms"]["net.loop.outbound_buffer_bytes"]["count"]
                > 0
            )


def test_backpressure_overflow_sheds_with_wire_error(tiny_bundle):
    """An outbound bound smaller than a single accept frame forces the
    overflow path: the client gets a terminal ``overloaded`` error
    frame (allowed past the bound) and the shed is counted."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, max_outbound_bytes=8) as tcp:
            host, port = tcp.address
            conn = connect(host, port, read_timeout_s=5.0)
            try:
                conn.send(Hello(sender="mobile", rng_seed=41))
                message = conn.recv()
            finally:
                conn.close()
    assert message.code == "overloaded"
    counters = access.metrics.snapshot()["counters"]
    assert counters["net.server.backpressure_shed"] >= 1


def test_server_thread_count_is_flat_across_idle_connections(tiny_bundle):
    """The core scaling property, smoke-sized: 32 idle connections add
    zero threads (the full-scale version lives in
    ``benchmarks/test_net_scaling.py``)."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(
            access, handshake_timeout_s=30.0
        ) as tcp:
            host, port = tcp.address
            baseline = threading.active_count()
            socks = [
                socket.create_connection((host, port)) for _ in range(32)
            ]
            try:
                _wait_for(
                    lambda: access.metrics.snapshot().get(
                        "gauges", {}
                    ).get("net.conn.open", 0) == 32,
                    detail="all idle conns accepted",
                )
                assert threading.active_count() == baseline
                # the loop still serves real sessions around the idlers
                result = WaveKeyNetClient(
                    host, port, CLIENT_CFG
                ).establish(rng_seed=55)
                assert result.success
            finally:
                for sock in socks:
                    sock.close()
