"""Partial-frame adversary tests: the wire never promises whole frames.

TCP is a byte stream — an adversary (or a congested path) can deliver
a frame one byte at a time, split anywhere, or coalesced with its
neighbors.  The event-loop server's :class:`FrameAssembler` must
reassemble all of it without ever blocking the loop, and a client that
stalls mid-frame must be evicted by the handshake deadline, not hold a
connection slot forever.
"""

import socket
import struct
import time

import pytest

from repro.errors import ConnectionClosed, DecodeError, FrameTooLarge
from repro.net import NetClientConfig, WaveKeyNetClient, WaveKeyTCPServer
from repro.net.codec import (
    FrameAssembler,
    FrameType,
    Hello,
    encode_message,
    frame_to_bytes,
)
from repro.net.connection import FrameConnection
from repro.protocol.messages import OTAnnounce

from tests.net.conftest import make_access_server, matched_seed, pin_seeds

CLIENT_CFG = NetClientConfig(
    read_timeout_s=5.0, max_retries=1, backoff_initial_s=0.01
)


def _frame_bytes(message) -> bytes:
    return frame_to_bytes(encode_message(message))


# -- FrameAssembler units ----------------------------------------------------


def test_assembler_reassembles_byte_at_a_time():
    data = _frame_bytes(Hello(sender="m", rng_seed=1))
    assembler = FrameAssembler()
    for i, byte in enumerate(data):
        assembler.feed(bytes([byte]))
        frame = assembler.next_frame()
        if i < len(data) - 1:
            assert frame is None, f"frame completed early at byte {i}"
        else:
            assert frame is not None
            assert frame.type is FrameType.HELLO
    assert assembler.buffered == 0


def test_assembler_parses_many_frames_from_one_chunk():
    messages = [Hello(sender=f"m{i}", rng_seed=i) for i in range(5)]
    assembler = FrameAssembler()
    assembler.feed(b"".join(_frame_bytes(m) for m in messages))
    frames = assembler.drain()
    assert len(frames) == 5
    assert all(f.type is FrameType.HELLO for f in frames)


def test_assembler_oversized_frame_poisons_the_stream():
    assembler = FrameAssembler(max_frame_bytes=16)
    assembler.feed(_frame_bytes(Hello(sender="x" * 64, rng_seed=1)))
    with pytest.raises(FrameTooLarge):
        assembler.next_frame()
    assert assembler.broken
    # the length prefix cannot be trusted, so parsing stays refused
    with pytest.raises(DecodeError):
        assembler.next_frame()


def test_assembler_unknown_type_consumes_frame_and_recovers():
    bogus = struct.pack("!IB", 3, 0x7E) + b"ab"  # type 0x7E: unassigned
    assembler = FrameAssembler()
    assembler.feed(bogus + _frame_bytes(Hello(sender="m", rng_seed=2)))
    with pytest.raises(DecodeError):
        assembler.next_frame()
    assert not assembler.broken  # per-frame error, stream still aligned
    frame = assembler.next_frame()
    assert frame is not None and frame.type is FrameType.HELLO


def test_assembler_reuses_buffer_across_frames():
    assembler = FrameAssembler(initial_capacity=64)
    data = _frame_bytes(Hello(sender="m", rng_seed=3))
    for _ in range(200):
        assembler.feed(data)
        assert assembler.next_frame() is not None
    # sequential frames recycle the window in place; the buffer never
    # grows beyond one doubling of the initial capacity
    assert assembler.capacity <= 4 * max(64, len(data))


# -- adversarial delivery over loopback --------------------------------------


def test_slow_loris_hello_still_handshakes(tiny_bundle):
    """A client dripping its HELLO one byte at a time is still served:
    the assembler accumulates across readiness events."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access) as tcp:
            raw = socket.create_connection(tcp.address)
            try:
                for byte in _frame_bytes(Hello(sender="drip", rng_seed=51)):
                    raw.sendall(bytes([byte]))
                    time.sleep(0.002)
                conn = FrameConnection(raw, read_timeout_s=5.0)
                accept = conn.recv()
            finally:
                raw.close()
    assert accept.session_id
    assert accept.sender == "server"


def test_frame_split_across_segments_mid_agreement(tiny_bundle):
    """Mid-agreement frames arriving in 3-byte segments reassemble into
    one protocol message (here: a spoofed announce, so the round fails
    with the sender-mismatch rejection — proof the whole frame made it
    through the assembler to the worker)."""
    with make_access_server(tiny_bundle, max_attempts=1) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, read_timeout_s=5.0) as tcp:
            raw = socket.create_connection(tcp.address)
            conn = FrameConnection(raw, read_timeout_s=5.0)
            try:
                conn.send(Hello(sender="mobile", rng_seed=52))
                conn.recv()  # Accept
                conn.recv()  # SeedGrant
                spoofed = _frame_bytes(
                    OTAnnounce(sender="mallory", elements=(5,))
                )
                for i in range(0, len(spoofed), 3):
                    raw.sendall(spoofed[i:i + 3])
                    time.sleep(0.001)
                result = conn.recv()  # RoundResult
            finally:
                conn.close()
    assert not result.success
    assert "sender mismatch" in result.reason


def test_coalesced_frames_in_one_segment(tiny_bundle):
    """HELLO and the next protocol message welded into a single send
    are split back into two frames by the assembler."""
    with make_access_server(tiny_bundle, max_attempts=1) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, read_timeout_s=5.0) as tcp:
            raw = socket.create_connection(tcp.address)
            conn = FrameConnection(raw, read_timeout_s=5.0)
            try:
                raw.sendall(
                    _frame_bytes(Hello(sender="mobile", rng_seed=53))
                    + _frame_bytes(
                        OTAnnounce(sender="mallory", elements=(5,))
                    )
                )
                accept = conn.recv()
                grant = conn.recv()
                result = conn.recv()  # RoundResult for the early announce
            finally:
                conn.close()
    assert accept.session_id
    assert grant.attempt == 1
    assert not result.success
    assert "sender mismatch" in result.reason


def test_stall_mid_handshake_hits_read_deadline(tiny_bundle):
    """A client sending half a HELLO and going silent is evicted at the
    handshake deadline with a typed timeout error, and the server keeps
    serving others."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(
            access, handshake_timeout_s=0.3
        ) as tcp:
            host, port = tcp.address
            raw = socket.create_connection((host, port))
            try:
                hello = _frame_bytes(Hello(sender="staller", rng_seed=54))
                raw.sendall(hello[:len(hello) // 2])
                conn = FrameConnection(raw, read_timeout_s=5.0)
                error = conn.recv()
                assert error.code == "timeout"
                with pytest.raises(ConnectionClosed):
                    conn.recv()  # server closed after the error frame
            finally:
                raw.close()

            counters = access.metrics.snapshot()["counters"]
            assert counters["net.server.handshake_timeouts"] >= 1

            # the stalled connection did not wedge the server
            result = WaveKeyNetClient(
                host, port, CLIENT_CFG
            ).establish(rng_seed=55)
            assert result.success
