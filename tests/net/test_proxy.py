"""Fault-injection proxy tests: adversary hooks on real connections.

Each test routes a loopback establishment through
:class:`FaultInjectionProxy` and asserts the typed failure (or typed
recovery) the injected fault must produce: drops surface as read
timeouts and retries, corruption as decode errors, delays as the
paper's tau-deadline breach, reordering as a protocol violation, and
taps observe the full frame transcript without perturbing it.
"""

import pytest

from repro.errors import TransportError
from repro.net import (
    FaultInjectionProxy,
    FrameType,
    NetClientConfig,
    WaveKeyNetClient,
    WaveKeyTCPServer,
    corrupt_frames,
    delay_frames,
    drop_frames,
    reorder_once,
)

from tests.net.conftest import make_access_server, matched_seed, pin_seeds

FAST_CFG = NetClientConfig(
    read_timeout_s=2.0, max_retries=2, backoff_initial_s=0.01
)


@pytest.fixture()
def wired(tiny_bundle):
    """An access server with pinned matching seeds behind a TCP front
    end; yields the (access, tcp) pair."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, read_timeout_s=2.0) as tcp:
            yield access, tcp


def test_tap_sees_full_transcript_without_perturbing(wired):
    _, tcp = wired
    transcript = []
    with FaultInjectionProxy(
        tcp.address,
        taps=[lambda d, f: transcript.append((d, FrameType(f.type)))],
    ) as proxy:
        result = WaveKeyNetClient(
            *proxy.address, FAST_CFG
        ).establish(rng_seed=21)

    assert result.success
    types = [t for _, t in transcript]
    # the tap observed the whole protocol, in order
    assert types[0] == FrameType.HELLO
    assert types[1] == FrameType.ACCEPT
    for required in (
        FrameType.SEED_GRANT, FrameType.OT_ANNOUNCE,
        FrameType.OT_RESPONSE, FrameType.OT_CIPHERTEXTS,
        FrameType.RECON_CHALLENGE, FrameType.CONFIRM_RESPONSE,
        FrameType.CONFIRM_ACK, FrameType.ROUND_RESULT, FrameType.VERDICT,
    ):
        assert required in types, required
    # both directions were pumped
    directions = {d for d, _ in transcript}
    assert directions == {"c2s", "s2c"}


def test_dropped_announce_recovers_via_retry(wired):
    """Dropping the client's M_A stalls the round until the server's
    read deadline; the server's retry policy grants a fresh round and
    the establishment still succeeds."""
    _, tcp = wired
    with FaultInjectionProxy(
        tcp.address,
        interceptor=drop_frames(types=[FrameType.OT_ANNOUNCE], count=1),
    ) as proxy:
        result = WaveKeyNetClient(
            *proxy.address, FAST_CFG
        ).establish(rng_seed=22)

    assert result.success
    assert len(result.rounds) >= 2
    assert not result.rounds[0].success
    assert "transport" in result.rounds[0].reason
    assert proxy.dropped == 1


def test_corrupted_frame_surfaces_as_decode_error_and_retries(wired):
    """Flipping a payload byte of the client's M_A makes the server's
    decode fail with a typed transport reason; the retry succeeds."""
    _, tcp = wired
    with FaultInjectionProxy(
        tcp.address,
        interceptor=corrupt_frames(types=[FrameType.OT_ANNOUNCE], count=1),
    ) as proxy:
        result = WaveKeyNetClient(
            *proxy.address, FAST_CFG
        ).establish(rng_seed=23)

    assert result.success
    assert not result.rounds[0].success
    assert "transport" in result.rounds[0].reason
    assert "truncated" in result.rounds[0].reason


def test_blackhole_exhausts_retries_with_typed_error(wired):
    """A proxy that swallows every frame leaves the client nothing but
    its bounded retries and a typed TransportError."""
    _, tcp = wired
    with FaultInjectionProxy(
        tcp.address, interceptor=drop_frames(types=None, count=10_000),
    ) as proxy:
        client = WaveKeyNetClient(*proxy.address, FAST_CFG)
        with pytest.raises(TransportError):
            client.establish(rng_seed=24)


def test_delayed_announce_breaches_tau_deadline(wired):
    """Holding M_A past ``gesture_window_s + tau_s`` (2.12 s on the
    protocol clock) forces the paper's deadline failure on the server:
    the session times out rather than establishing."""
    access, tcp = wired
    with FaultInjectionProxy(
        tcp.address,
        interceptor=delay_frames(
            2.5, types=[FrameType.OT_ANNOUNCE], count=None
        ),
    ) as proxy:
        result = WaveKeyNetClient(
            *proxy.address,
            NetClientConfig(read_timeout_s=10.0, max_retries=0),
        ).establish(rng_seed=25)

    assert not result.success
    assert result.state in ("timed_out", "failed")
    reasons = " | ".join(r.reason for r in result.rounds)
    assert "deadline" in reasons or "transport" in reasons


def test_reordered_frames_rejected_by_strict_exchange(wired):
    """The exchange is strictly alternating; a swapped frame pair is a
    protocol violation, not silently tolerated."""
    _, tcp = wired
    with FaultInjectionProxy(
        tcp.address,
        interceptor=reorder_once(
            types=[FrameType.OT_ANNOUNCE, FrameType.OT_RESPONSE]
        ),
    ) as proxy:
        result = WaveKeyNetClient(
            *proxy.address, NetClientConfig(
                read_timeout_s=2.0, max_retries=0,
            ),
        ).establish(rng_seed=26)

    assert not result.success
    assert not any(r.success for r in result.rounds)
