"""Shared fixtures for the networked-stack tests.

A tiny untrained bundle (key quality is irrelevant here) plus injected
deterministic acquisition, and batcher overrides that pin the encoded
seeds — so agreement success/failure over the wire is controlled
exactly, never Monte-Carlo."""

import numpy as np
import pytest

from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.service import ServiceConfig, WaveKeyAccessServer
from repro.utils.bits import BitSequence


@pytest.fixture(scope="module")
def tiny_bundle():
    return WaveKeyModelBundle(
        imu_encoder=build_imu_encoder(6, rng=0),
        rf_encoder=build_rf_encoder(6, rng=1),
        decoder=build_decoder(6, rng=2),
        n_bins=8,
        eta=0.2,
    )


def fixed_acquire(request, rng):
    """Deterministic sensor windows with valid shapes/ranges."""
    gen = np.random.default_rng(request.rng_seed)
    a_matrix = gen.normal(size=(200, 3))
    r_matrix = np.stack(
        [
            gen.uniform(-np.pi, np.pi, 400),
            np.abs(gen.normal(size=400)) + 0.5,
        ],
        axis=1,
    )
    return a_matrix, r_matrix


def make_access_server(bundle, agreement_config=None, **config_kwargs):
    config_kwargs.setdefault("workers", 2)
    return WaveKeyAccessServer(
        bundle,
        ServiceConfig(**config_kwargs),
        acquire_fn=fixed_acquire,
        agreement_config=agreement_config,
    )


def pin_seeds(access_server, mobile_seed, server_seed=None):
    """Force the micro-batchers to emit fixed seeds: identical seeds
    guarantee agreement, seeds differing beyond the ECC radius
    guarantee failure."""
    server_seed = server_seed if server_seed is not None else mobile_seed
    access_server._imu_batcher.batch_fn = (
        lambda items: [mobile_seed for _ in items]
    )
    access_server._rf_batcher.batch_fn = (
        lambda items: [server_seed for _ in items]
    )


def matched_seed(bits=32, rng_seed=7):
    return BitSequence.random(bits, np.random.default_rng(rng_seed))


def mismatched_seeds(bits=32, flips=20, rng_seed=7):
    """A seed pair whose hamming distance far exceeds the tolerated
    reconciliation radius (eta=0.2 over 32 bits tolerates 6 flips)."""
    base = matched_seed(bits, rng_seed)
    flipped = list(base)
    for i in range(flips):
        flipped[i] ^= 1
    return base, BitSequence(flipped)
