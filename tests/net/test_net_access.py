"""Secure-access E2E over real sockets.

Acceptance flow from the PR issue: establish -> ticket grant -> resume
over a new connection -> authenticated ops -> revoke -> rejected
reconnect, plus the adversarial wire cases (replayed records, expired
tickets, forged revocations) and journal-backed server restart.
"""

import pytest

from repro.access.journal import TicketJournal
from repro.access.records import derive_channel_keys, derive_resume_secret
from repro.access.store import KeyStore
from repro.errors import (
    AccessError,
    TicketError,
    TicketExpired,
    TicketRevoked,
    TicketUnknown,
)
from repro.net import (
    ClientTicket,
    NetClientConfig,
    WaveKeyNetClient,
    WaveKeyTCPServer,
)
from repro.net.codec import (
    ErrorFrame,
    RecordFrame,
    ResumeAccept,
    ResumeRequest,
    RevokeNotice,
)
from repro.net.connection import connect
from repro.net.server import ThreadedWaveKeyTCPServer
from repro.obs import MetricsRegistry, Tracer

from tests.net.conftest import make_access_server, matched_seed, pin_seeds

CLIENT_CFG = NetClientConfig(
    read_timeout_s=5.0, max_retries=1, backoff_initial_s=0.01
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def establish_with_ticket(tcp, metrics=None, tracer=None, rng_seed=11):
    host, port = tcp.address
    client = WaveKeyNetClient(
        host, port, CLIENT_CFG, metrics=metrics, tracer=tracer
    )
    result = client.establish(rng_seed=rng_seed)
    assert result.success
    assert result.ticket is not None, "no TicketGrant arrived"
    return client, result


def test_establish_resume_ops_revoke(tiny_bundle):
    """The full acceptance loop on the event-loop server."""
    metrics = MetricsRegistry()
    tracer = Tracer()
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access) as tcp:
            client, result = establish_with_ticket(
                tcp, metrics=metrics, tracer=tracer
            )
            ticket = result.ticket
            assert ticket.lifetime_s > 0
            assert ticket.server == "%s:%d" % tcp.address

            # the secret is derived, never wire-carried
            assert ticket.resume_secret == derive_resume_secret(
                result.key.to_bytes()
            )

            with client.open_channel(ticket) as channel:
                query = channel.request("query", target="door")
                assert query["allowed"] and query["peer"] == "mobile"
                assert query["resumed"] == 1
                opened = channel.request("open", target="door")
                assert opened["ok"] and opened["opened"]

            # second resumption of the same ticket works too
            with client.open_channel(ticket) as channel:
                assert channel.request("ping")["pong"] is True

            assert client.revoke(ticket) is True
            with pytest.raises(TicketRevoked):
                client.open_channel(ticket)

        counters = metrics.snapshot()["counters"]
        assert counters["access.client.grants"] == 1
        assert counters["access.client.resumed"] == 2
        assert counters["access.client.revoked"] == 1
        assert counters[
            'access.client.resume_rejected{code="ticket_revoked"}'
        ] == 1
        span_names = {s.name for s in tracer.finished_spans()}
        assert "access.resume" in span_names

    server_counters = access.metrics.snapshot()["counters"]
    assert server_counters["access.grants"] == 1
    assert server_counters['access.resume{outcome="ok"}'] == 2
    assert server_counters['access.ops{op="query",role="server"}'] == 1


def test_threaded_server_resumes_too(tiny_bundle):
    """The baseline threaded front end speaks the same access flow."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with ThreadedWaveKeyTCPServer(access) as tcp:
            client, result = establish_with_ticket(tcp)
            with client.open_channel(result.ticket) as channel:
                assert channel.request("query")["allowed"] is True
            assert client.revoke(result.ticket) is True
            with pytest.raises(TicketRevoked):
                client.open_channel(result.ticket)


def test_unknown_ticket_rejected(tiny_bundle):
    with make_access_server(tiny_bundle) as access:
        with WaveKeyTCPServer(access) as tcp:
            host, port = tcp.address
            client = WaveKeyNetClient(host, port, CLIENT_CFG)
            bogus = ClientTicket(
                ticket_id="00" * 16,
                resume_secret=b"\x07" * 32,
                expires_at=0.0,
                lifetime_s=60.0,
            )
            with pytest.raises(TicketUnknown):
                client.open_channel(bogus)


def test_expired_ticket_rejected(tiny_bundle):
    clock = FakeClock()
    store = KeyStore(ttl_s=30.0, clock=clock)
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, key_store=store) as tcp:
            client, result = establish_with_ticket(tcp)
            clock.now += 31.0
            with pytest.raises(TicketExpired):
                client.open_channel(result.ticket)


def test_forged_revocation_rejected(tiny_bundle):
    """A RevokeNotice without the ticket's revocation key must not
    kill the ticket."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access) as tcp:
            client, result = establish_with_ticket(tcp)
            ticket = result.ticket
            forged = ClientTicket(
                ticket_id=ticket.ticket_id,
                resume_secret=b"\x66" * 32,  # wrong secret
                expires_at=ticket.expires_at,
                lifetime_s=ticket.lifetime_s,
            )
            with pytest.raises(TicketError, match="revoke_auth"):
                client.revoke(forged)
            # the genuine ticket still resumes
            with client.open_channel(ticket) as channel:
                assert channel.request("ping")["pong"] is True


def test_replayed_record_rejected_over_wire(tiny_bundle):
    """Capture one sealed record and feed it twice: the server must
    reject the copy with a typed wire error and drop the channel."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access) as tcp:
            client, result = establish_with_ticket(tcp)
            ticket = result.ticket

            host, port = tcp.address
            conn = connect(host, port, timeout_s=5.0, read_timeout_s=5.0)
            try:
                client_nonce = b"\x21" * 16
                conn.send(ResumeRequest(
                    sender="mobile",
                    ticket_id=ticket.ticket_id,
                    client_nonce=client_nonce,
                ))
                accept = conn.recv()
                assert isinstance(accept, ResumeAccept)
                from repro.access.channel import ClientAccessChannel, encode_op

                _, records = ClientAccessChannel.complete_handshake(
                    ticket.resume_secret, client_nonce, accept
                )
                record = records.seal(encode_op("ping"))
                conn.send(record)
                reply = conn.recv()
                assert isinstance(reply, RecordFrame)

                conn.send(record)  # verbatim replay
                answer = conn.recv()
                assert isinstance(answer, ErrorFrame)
                assert answer.code == "record_rejected"
            finally:
                conn.close()

    counters = access.metrics.snapshot()["counters"]
    assert counters["access.records_rejected"] >= 1


def test_cross_channel_record_rejected(tiny_bundle):
    """A record sealed for one resumption fails authentication when
    injected into a different resumption of the same ticket."""
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access) as tcp:
            client, result = establish_with_ticket(tcp)
            ticket = result.ticket

            from repro.access.channel import encode_op
            from repro.access.records import CLIENT, RecordChannel

            stale_keys = derive_channel_keys(
                ticket.resume_secret, b"\x01" * 16, b"\x02" * 16
            )
            stale = RecordChannel(stale_keys, CLIENT).seal(encode_op("ping"))

            channel = client.open_channel(ticket)
            try:
                channel.conn.send(stale)
                answer = channel.conn.recv()
                assert isinstance(answer, ErrorFrame)
                assert answer.code == "record_rejected"
            finally:
                channel.conn.close()


def test_journal_recovery_across_restart(tiny_bundle, tmp_path):
    """Kill the server, restart with the same journal: live tickets
    keep resuming, revoked tickets stay dead."""
    journal_path = str(tmp_path / "tickets.journal")

    store = KeyStore(journal=TicketJournal(journal_path))
    store.recover()
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, key_store=store) as tcp:
            client, live_result = establish_with_ticket(tcp)
            _, dead_result = establish_with_ticket(tcp, rng_seed=12)
            client.revoke(dead_result.ticket)
        store.close()

        # --- restart: fresh store, fresh server, same journal --------
        reborn = KeyStore(journal=TicketJournal(journal_path))
        assert reborn.recover() == 1
        with WaveKeyTCPServer(access, key_store=reborn) as tcp:
            host, port = tcp.address
            client = WaveKeyNetClient(host, port, CLIENT_CFG)
            with client.open_channel(live_result.ticket) as channel:
                reply = channel.request("query", target="door")
                assert reply["allowed"] is True
            with pytest.raises(TicketRevoked):
                client.open_channel(dead_result.ticket)
        reborn.close()


def test_client_ticket_json_roundtrip():
    ticket = ClientTicket(
        ticket_id="cd" * 16,
        resume_secret=b"\x55" * 32,
        expires_at=1.7e9,
        lifetime_s=3600.0,
        server="10.0.0.1:4321",
    )
    assert ClientTicket.from_json(ticket.to_json()) == ticket
    with pytest.raises(AccessError, match="malformed"):
        ClientTicket.from_json('{"ticket_id": "x"}')
