"""Distributed-trace wire propagation and telemetry scraping E2E.

Real sockets, two tracers (client's and server's): the client's root
span id travels inside ``Hello``/``ResumeRequest``, the backend
continues the trace through the worker-pool handoff, and the
``TELEMETRY_REQUEST`` scrape returns a document that stitches back
into one tree under the client's trace id.
"""

import time

import pytest

from repro.cluster.stats import fetch_telemetry
from repro.net import NetClientConfig, WaveKeyNetClient, WaveKeyTCPServer
from repro.net.server import ThreadedWaveKeyTCPServer
from repro.obs import TelemetryBuffer, Tracer, format_stitched, stitch
from repro.obs.collect import TELEMETRY_SCHEMA
from repro.service import ServiceConfig, WaveKeyAccessServer

from tests.net.conftest import fixed_acquire, matched_seed, pin_seeds

CLIENT_CFG = NetClientConfig(
    read_timeout_s=5.0, max_retries=1, backoff_initial_s=0.01
)


@pytest.fixture()
def traced_access(tiny_bundle):
    """An access server with its own tracer (distinct from any
    client's, as in separate processes)."""
    server = WaveKeyAccessServer(
        tiny_bundle,
        ServiceConfig(workers=2),
        acquire_fn=fixed_acquire,
        tracer=Tracer(),
    )
    pin_seeds(server, matched_seed())
    with server:
        yield server


def spans_by_name(tracer):
    return {s.name: s for s in tracer.finished_spans()}


def wait_for_buffered_span(telemetry, name, timeout_s=5.0):
    """The session root finishes on a worker thread after the verdict
    is already on the wire — poll the buffer instead of racing it."""
    deadline = time.monotonic() + timeout_s
    while True:
        telemetry.flush()
        doc = telemetry.document()
        if any(s["name"] == name for s in doc["spans"]):
            return doc
        assert time.monotonic() < deadline, f"no finished {name!r} span"
        time.sleep(0.02)


def test_establish_continues_client_trace(traced_access):
    client_tracer = Tracer()
    telemetry = TelemetryBuffer(
        "backend", tracer=traced_access.tracer, events=traced_access.events
    )
    with WaveKeyTCPServer(traced_access, telemetry=telemetry) as tcp:
        host, port = tcp.address
        client = WaveKeyNetClient(
            host, port, CLIENT_CFG, tracer=client_tracer
        )
        assert client.establish(rng_seed=11).success

    client_spans = spans_by_name(client_tracer)
    root = client_spans["net.establish"]
    hello = client_spans["net.hello"]
    assert hello.trace_id == root.trace_id

    doc = wait_for_buffered_span(telemetry, "session")
    assert doc["schema"] == TELEMETRY_SCHEMA
    server_spans = {s["name"]: s for s in doc["spans"]}
    session = server_spans["session"]
    # the server-side session tree lives in the CLIENT's trace and
    # hangs off the span that carried the Hello
    assert session["trace_id"] == root.trace_id
    assert session["parent_id"] == hello.span_id
    assert session["service"] == "backend"
    for stage in ("enqueue", "acquire"):
        assert server_spans[stage]["trace_id"] == root.trace_id


def test_resume_continues_client_trace(traced_access):
    client_tracer = Tracer()
    telemetry = TelemetryBuffer("backend", tracer=traced_access.tracer)
    with WaveKeyTCPServer(traced_access, telemetry=telemetry) as tcp:
        host, port = tcp.address
        client = WaveKeyNetClient(
            host, port, CLIENT_CFG, tracer=client_tracer
        )
        result = client.establish(rng_seed=11)
        assert result.ticket is not None
        with client.open_channel(result.ticket) as channel:
            assert channel.request("ping")["pong"] is True

    resume_root = spans_by_name(client_tracer)["access.resume"]
    doc = wait_for_buffered_span(telemetry, "access.op")
    server_spans = {
        s["name"]: s for s in doc["spans"]
        if s["trace_id"] == resume_root.trace_id
    }
    accept = server_spans["access.resume.accept"]
    assert accept["parent_id"] == resume_root.span_id
    op = server_spans["access.op"]
    assert op["parent_id"] == resume_root.span_id
    assert op["attributes"]["op"] == "ping"


def test_threaded_server_continues_trace_too(tiny_bundle):
    server_tracer = Tracer()
    access = WaveKeyAccessServer(
        tiny_bundle, ServiceConfig(workers=2),
        acquire_fn=fixed_acquire, tracer=server_tracer,
    )
    pin_seeds(access, matched_seed())
    client_tracer = Tracer()
    telemetry = TelemetryBuffer("backend", tracer=server_tracer)
    with access, ThreadedWaveKeyTCPServer(
        access, telemetry=telemetry
    ) as tcp:
        host, port = tcp.address
        client = WaveKeyNetClient(
            host, port, CLIENT_CFG, tracer=client_tracer
        )
        assert client.establish(rng_seed=11).success

    root = spans_by_name(client_tracer)["net.establish"]
    doc = wait_for_buffered_span(telemetry, "session")
    sessions = [s for s in doc["spans"] if s["name"] == "session"]
    assert sessions and sessions[0]["trace_id"] == root.trace_id


def test_telemetry_scrape_over_wire_and_drain(traced_access):
    client_tracer = Tracer()
    telemetry = TelemetryBuffer(
        "backend", tracer=traced_access.tracer, events=traced_access.events
    )
    with WaveKeyTCPServer(traced_access, telemetry=telemetry) as tcp:
        host, port = tcp.address
        client = WaveKeyNetClient(
            host, port, CLIENT_CFG, tracer=client_tracer
        )
        assert client.establish(rng_seed=11).success

        deadline = time.monotonic() + 5.0
        while True:  # peek until the worker finishes the session root
            doc = fetch_telemetry(host, port)
            if any(s["name"] == "session" for s in doc["spans"]):
                break
            assert time.monotonic() < deadline, "session span never scraped"
            time.sleep(0.05)
        assert doc["schema"] == TELEMETRY_SCHEMA
        assert doc["service"] == "backend"
        assert doc["events"], "server events should ride the document"

        # drain semantics: the ring is now empty until new work lands
        fetch_telemetry(host, port, drain=True)
        again = fetch_telemetry(host, port, drain=True)
        assert again["spans"] == []

        # a telemetry scrape is not a session
        counters = tcp.metrics.snapshot()["counters"]
        assert counters["net.server.telemetry_requests"] >= 3
        assert tcp.sessions_served == 1

    # the scraped document stitches with the client's local spans into
    # exactly one tree spanning both services
    root = spans_by_name(client_tracer)["net.establish"]
    stitched = stitch(
        [doc],
        extra_spans=client_tracer.finished_spans(),
        extra_service="client",
    )
    trace_spans = [
        s for s in stitched["spans"] if s["trace_id"] == root.trace_id
    ]
    assert {s["service"] for s in trace_spans} == {"client", "backend"}
    text = format_stitched(stitched)
    assert "net.establish" in text
    assert "@backend" in text and "@client" in text
    assert "cross-hop latency breakdown:" in text


def test_contextless_hello_still_served(traced_access):
    """A pre-trace client (tracer disabled -> no wire context) gets a
    session and the server mints its own root trace."""
    telemetry = TelemetryBuffer("backend", tracer=traced_access.tracer)
    with WaveKeyTCPServer(traced_access, telemetry=telemetry) as tcp:
        host, port = tcp.address
        client = WaveKeyNetClient(
            host, port, CLIENT_CFG, tracer=Tracer(enabled=False)
        )
        assert client.establish(rng_seed=11).success
    doc = wait_for_buffered_span(telemetry, "session")
    sessions = [s for s in doc["spans"] if s["name"] == "session"]
    assert sessions and sessions[0]["parent_id"] is None
