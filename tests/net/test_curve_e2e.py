"""End-to-end establishment over Curve25519 on real sockets.

The same loopback scenarios the MODP stack is tested with, run with
both parties configured for the elliptic-curve group: the event-loop
front end, the threaded front end, the sharding gateway splice, and
the typed rejection when client and server disagree on the group.
"""

import pytest

from repro.crypto import CURVE25519_GROUP
from repro.errors import GroupMismatch
from repro.net import (
    NetClientConfig,
    ThreadedWaveKeyTCPServer,
    WaveKeyNetClient,
    WaveKeyTCPServer,
)
from repro.protocol import KeyAgreementConfig

from tests.net.conftest import make_access_server, matched_seed, pin_seeds

FRONT_ENDS = [WaveKeyTCPServer, ThreadedWaveKeyTCPServer]
FRONT_END_IDS = ["eventloop", "threaded"]

CURVE_CFG = NetClientConfig(
    group=CURVE25519_GROUP, read_timeout_s=5.0, max_retries=1,
    backoff_initial_s=0.01,
)
MODP_CFG = NetClientConfig(
    read_timeout_s=5.0, max_retries=1, backoff_initial_s=0.01,
)


def curve_agreement(bundle):
    return KeyAgreementConfig(eta=bundle.eta, group=CURVE25519_GROUP)


@pytest.fixture(params=FRONT_ENDS, ids=FRONT_END_IDS)
def curve_server(request, tiny_bundle):
    """A curve25519-configured access server behind one front end."""
    with make_access_server(
        tiny_bundle, agreement_config=curve_agreement(tiny_bundle)
    ) as access:
        pin_seeds(access, matched_seed())
        with request.param(access, read_timeout_s=5.0) as tcp:
            yield access, tcp


def test_curve_establishment_over_loopback(curve_server):
    _, tcp = curve_server
    result = WaveKeyNetClient(*tcp.address, CURVE_CFG).establish(rng_seed=31)
    assert result.success, result.failure_reason
    assert len(result.key) > 0


def test_curve_sessions_negotiate_the_group(curve_server):
    access, tcp = curve_server
    result = WaveKeyNetClient(*tcp.address, CURVE_CFG).establish(rng_seed=32)
    assert result.success
    # The pool served curve material, not MODP material.
    counters = access.metrics.snapshot()["counters"]
    curve_hits = sum(
        v for k, v in counters.items()
        if k.startswith("crypto.pool.hit") and 'group="curve25519"' in k
    )
    assert curve_hits > 0


def test_modp_client_rejected_by_curve_server(curve_server):
    _, tcp = curve_server
    with pytest.raises(GroupMismatch, match="curve25519"):
        WaveKeyNetClient(*tcp.address, MODP_CFG).establish(rng_seed=33)


def test_curve_client_rejected_by_modp_server(tiny_bundle):
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, read_timeout_s=5.0) as tcp:
            with pytest.raises(GroupMismatch, match="wavekey-512"):
                WaveKeyNetClient(
                    *tcp.address, CURVE_CFG
                ).establish(rng_seed=34)


def test_curve_establishment_through_gateway(tiny_bundle):
    """The gateway splices opaque frames: the Hello group block passes
    through to the backend untouched and the session establishes."""
    from repro.cluster import WaveKeyGateway

    with make_access_server(
        tiny_bundle, agreement_config=curve_agreement(tiny_bundle)
    ) as access:
        pin_seeds(access, matched_seed())
        with ThreadedWaveKeyTCPServer(access, read_timeout_s=5.0) as tcp:
            backend = f"{tcp.address[0]}:{tcp.address[1]}"
            with WaveKeyGateway(
                [backend], probe_interval_s=0.2, connect_timeout_s=2.0,
            ) as gateway:
                result = WaveKeyNetClient(
                    *gateway.address, CURVE_CFG
                ).establish(rng_seed=35)
    assert result.success, result.failure_reason
