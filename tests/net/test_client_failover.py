"""Client-side endpoint failover: bounded rotation on connect failure."""

import socket

import pytest

from repro.errors import ConfigurationError, TransportError
from repro.net import NetClientConfig, WaveKeyNetClient, WaveKeyTCPServer
from repro.obs import MetricsRegistry

from tests.net.conftest import make_access_server, matched_seed, pin_seeds


def _dead_port() -> int:
    """A port that was just closed: connects are refused, not hung."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.fixture
def live_server(tiny_bundle):
    with make_access_server(tiny_bundle) as access:
        pin_seeds(access, matched_seed())
        with WaveKeyTCPServer(access, "127.0.0.1", 0) as tcp:
            yield tcp


class TestFailover:
    def test_dead_primary_fails_over_to_live_endpoint(self, live_server):
        host, port = live_server.address
        metrics = MetricsRegistry()
        config = NetClientConfig(
            max_retries=2,
            backoff_initial_s=0.0,
            endpoints=(f"{host}:{port}",),
        )
        client = WaveKeyNetClient(
            "127.0.0.1", _dead_port(), config, metrics=metrics
        )
        result = client.establish(rng_seed=11)
        assert result.success
        assert result.endpoint == f"{host}:{port}"
        assert result.connects == 2
        counters = metrics.snapshot()["counters"]
        assert counters["net.client.failover"] == 1
        assert counters["net.client.transport_errors"] == 1

    def test_all_endpoints_dead_raises_after_bounded_retries(self):
        metrics = MetricsRegistry()
        config = NetClientConfig(
            max_retries=2,
            backoff_initial_s=0.0,
            endpoints=(f"127.0.0.1:{_dead_port()}",),
        )
        client = WaveKeyNetClient(
            "127.0.0.1", _dead_port(), config, metrics=metrics
        )
        with pytest.raises(TransportError):
            client.establish(rng_seed=11)
        counters = metrics.snapshot()["counters"]
        assert counters["net.client.transport_errors"] == 3  # 1 + retries
        assert counters["net.client.failover"] == 3

    def test_single_endpoint_never_counts_failover(self):
        metrics = MetricsRegistry()
        config = NetClientConfig(max_retries=1, backoff_initial_s=0.0)
        client = WaveKeyNetClient(
            "127.0.0.1", _dead_port(), config, metrics=metrics
        )
        with pytest.raises(TransportError):
            client.establish(rng_seed=3)
        counters = metrics.snapshot()["counters"]
        assert "net.client.failover" not in counters

    def test_healthy_primary_ignores_fallbacks(self, live_server):
        host, port = live_server.address
        metrics = MetricsRegistry()
        config = NetClientConfig(
            endpoints=(f"127.0.0.1:{_dead_port()}",),
        )
        client = WaveKeyNetClient(host, port, config, metrics=metrics)
        result = client.establish(rng_seed=19)
        assert result.success
        assert result.endpoint == f"{host}:{port}"
        assert "net.client.failover" not in metrics.snapshot()["counters"]

    def test_rotation_wraps_back_to_the_primary(self, live_server):
        host, port = live_server.address
        metrics = MetricsRegistry()
        # Primary is live but listed *after* two dead fallbacks have
        # been tried: index wraps modulo the endpoint count.
        config = NetClientConfig(
            max_retries=3,
            backoff_initial_s=0.0,
            endpoints=(
                f"127.0.0.1:{_dead_port()}",
                f"127.0.0.1:{_dead_port()}",
            ),
        )
        client = WaveKeyNetClient(
            "127.0.0.1", _dead_port(), config, metrics=metrics
        )
        # All three are dead -> rotation lands back on index 0 for the
        # fourth dial; still dead here, so the raise is expected.
        with pytest.raises(TransportError):
            client.establish(rng_seed=5)
        assert metrics.snapshot()["counters"]["net.client.failover"] == 4


class TestEndpointValidation:
    @pytest.mark.parametrize(
        "spec", ["nocolon", ":7000", "host:", "host:notaport", "host:0"]
    )
    def test_malformed_endpoints_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            NetClientConfig(endpoints=(spec,))

    def test_endpoint_list_is_coerced_to_tuple(self):
        config = NetClientConfig(endpoints=["10.0.0.1:7000"])
        assert config.endpoints == ("10.0.0.1:7000",)

    def test_duplicate_of_primary_is_dropped(self):
        client = WaveKeyNetClient(
            "10.0.0.1", 7000,
            NetClientConfig(endpoints=("10.0.0.1:7000", "10.0.0.2:7000")),
        )
        assert client._endpoints == [
            ("10.0.0.1", 7000), ("10.0.0.2", 7000),
        ]
