"""Tests for the hyperparameter-determination procedures (SVI-C)."""

import math

import numpy as np
import pytest

from repro.core import (
    KeySeedPipeline,
    calibrate_eta,
    determine_tau,
    prune_latent_width,
    sweep_quantization_bins,
)
from repro.core.hyperparams import (
    random_guess_success,
    select_optimal_bins,
)
from repro.core.training import JointTrainingConfig
from repro.crypto import generate_dh_group
from repro.errors import ConfigurationError


class TestRandomGuessSuccess:
    def test_eq4_closed_form(self):
        # l_s = 10, eta = 0.2 -> radius 2: (C(10,0)+C(10,1)+C(10,2))/2^10.
        expected = (1 + 10 + 45) / 1024
        assert random_guess_success(10, 0.2) == pytest.approx(expected)

    def test_monotone_in_eta(self):
        values = [random_guess_success(36, e) for e in (0.05, 0.1, 0.2, 0.4)]
        assert values == sorted(values)

    def test_zero_eta(self):
        assert random_guess_success(36, 0.0) == pytest.approx(2.0**-36)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_guess_success(0, 0.1)
        with pytest.raises(ConfigurationError):
            random_guess_success(10, 1.0)


class TestCalibrateEta:
    def test_covers_target_percentile(self, mini_bundle, mini_dataset):
        pipeline = KeySeedPipeline(mini_bundle)
        calibration = calibrate_eta(
            pipeline,
            mini_dataset.a_matrices(),
            mini_dataset.r_matrices(),
            target_success_rate=0.9,
            max_eta=0.49,  # uncapped: the mini model is untrained
        )
        assert calibration.expected_benign_success >= 0.9
        assert 0 < calibration.eta < 0.5

    def test_security_ceiling_caps_eta(self, mini_bundle, mini_dataset):
        pipeline = KeySeedPipeline(mini_bundle)
        capped = calibrate_eta(
            pipeline,
            mini_dataset.a_matrices(),
            mini_dataset.r_matrices(),
            target_success_rate=0.99,
            max_eta=0.1,
        )
        assert capped.eta <= 0.1 + 1e-9

    def test_eta_is_representable_mismatch_count(self, mini_bundle,
                                                 mini_dataset):
        pipeline = KeySeedPipeline(mini_bundle)
        calibration = calibrate_eta(
            pipeline, mini_dataset.a_matrices(), mini_dataset.r_matrices()
        )
        count = calibration.eta * calibration.seed_length
        assert count == pytest.approx(round(count))

    def test_validation(self, mini_bundle, mini_dataset):
        pipeline = KeySeedPipeline(mini_bundle)
        with pytest.raises(ConfigurationError):
            calibrate_eta(
                pipeline, mini_dataset.a_matrices(),
                mini_dataset.r_matrices(), target_success_rate=1.0,
            )


class TestBinSweep:
    def test_sweep_shape(self, mini_bundle, mini_dataset):
        points = sweep_quantization_bins(
            mini_bundle,
            mini_dataset.a_matrices(),
            mini_dataset.r_matrices(),
            n_bins_values=(4, 8, 12),
        )
        assert [p.n_bins for p in points] == [4, 8, 12]
        for p in points:
            assert 0 <= p.guess_success <= 1
            assert p.seed_length == mini_bundle.latent_width * math.ceil(
                math.log2(p.n_bins)
            )

    def test_guess_success_falls_with_more_bins(self, mini_bundle,
                                                mini_dataset):
        """Fig. 7's left axis: more bins -> longer seeds -> random
        guessing gets harder (until eta inflation counteracts)."""
        points = sweep_quantization_bins(
            mini_bundle,
            mini_dataset.a_matrices(),
            mini_dataset.r_matrices(),
            n_bins_values=(2, 16),
        )
        assert points[1].guess_success < points[0].guess_success * 10

    def test_select_optimal(self, mini_bundle, mini_dataset):
        points = sweep_quantization_bins(
            mini_bundle,
            mini_dataset.a_matrices(),
            mini_dataset.r_matrices(),
            n_bins_values=(4, 8),
        )
        best = select_optimal_bins(points)
        assert best in points

    def test_select_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            select_optimal_bins([])


class TestPruning:
    def test_prunes_below_initial_width(self, mini_dataset):
        config = JointTrainingConfig(
            latent_width=10, epochs=3, batch_size=32, learning_rate=2e-3
        )
        result = prune_latent_width(
            mini_dataset,
            initial_width=10,
            min_width=4,
            training_config=config,
            retrain_epochs=1,
            loss_increase_tolerance=10.0,  # keep pruning until min_width
            rng=1,
        )
        assert result.selected_width == 4
        assert result.steps[0].latent_width == 10
        assert result.steps[-1].latent_width == 4

    def test_stops_on_loss_increase(self, mini_dataset):
        config = JointTrainingConfig(
            latent_width=8, epochs=3, batch_size=32, learning_rate=2e-3
        )
        result = prune_latent_width(
            mini_dataset,
            initial_width=8,
            min_width=2,
            training_config=config,
            retrain_epochs=1,
            loss_increase_tolerance=-0.99,  # any non-improvement stops
            rng=2,
        )
        assert result.selected_width >= 2
        # Bundle remains usable after the surgery.
        out = result.bundle.imu_encoder.forward(
            np.zeros((2, 3, 200))
        )
        assert out.shape == (2, result.selected_width)

    def test_decoder_input_pruned_consistently(self, mini_dataset):
        config = JointTrainingConfig(
            latent_width=6, epochs=2, batch_size=32
        )
        result = prune_latent_width(
            mini_dataset,
            initial_width=6,
            min_width=5,
            training_config=config,
            retrain_epochs=1,
            loss_increase_tolerance=10.0,
            rng=3,
        )
        bundle = result.bundle
        latent = bundle.latent_width
        out = bundle.decoder.forward(np.zeros((2, latent)))
        assert out.shape == (2, 400)


class TestDetermineTau:
    def test_measures_and_adds_headroom(self):
        group = generate_dh_group(64, rng=3)
        measurement = determine_tau(
            seed_length=8, n_trials=5, group=group, headroom=1.2, rng=4
        )
        assert measurement.prep_times_s.shape == (5,)
        assert measurement.tau_s == pytest.approx(
            measurement.max_prep_s * 1.2
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            determine_tau(seed_length=0)
