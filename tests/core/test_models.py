"""Tests for the WaveKey architectures and the model bundle."""

import numpy as np
import pytest

from repro.core import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.errors import ConfigurationError


class TestArchitectures:
    def test_imu_encoder_shapes(self):
        encoder = build_imu_encoder(12, rng=0)
        out = encoder.forward(np.zeros((4, 3, 200)))
        assert out.shape == (4, 12)

    def test_rf_encoder_shapes(self):
        encoder = build_rf_encoder(12, rng=0)
        out = encoder.forward(np.zeros((4, 2, 400)))
        assert out.shape == (4, 12)

    def test_decoder_shapes(self):
        decoder = build_decoder(12, rng=0)
        out = decoder.forward(np.zeros((4, 12)))
        assert out.shape == (4, 400)

    def test_fig5_layer_sequence(self):
        encoder = build_imu_encoder(12, rng=0)
        kinds = [layer.spec()["type"] for layer in encoder]
        assert kinds == [
            "Conv1d", "ReLU", "Conv1d", "ReLU", "Flatten", "Dense",
            "BatchNorm1d",
        ]
        decoder = build_decoder(12, rng=0)
        kinds = [layer.spec()["type"] for layer in decoder]
        # deconv, FC, deconv, FC with ReLU after the first three.
        assert kinds.count("ConvTranspose1d") == 2
        assert kinds.count("Dense") == 2
        assert kinds.count("ReLU") == 3

    def test_final_batchnorm_is_non_affine(self):
        encoder = build_rf_encoder(8, rng=0)
        assert encoder[-1].affine is False

    def test_invalid_latent(self):
        with pytest.raises(ConfigurationError):
            build_imu_encoder(0)

    def test_trainable_end_to_end(self):
        encoder = build_imu_encoder(6, rng=1)
        x = np.random.default_rng(0).normal(size=(8, 3, 200))
        out = encoder.forward(x, training=True)
        encoder.backward(np.ones_like(out))  # must not raise


class TestBundle:
    def make_bundle(self, latent=8, **kwargs):
        return WaveKeyModelBundle(
            imu_encoder=build_imu_encoder(latent, rng=0),
            rf_encoder=build_rf_encoder(latent, rng=1),
            decoder=build_decoder(latent, rng=2),
            **kwargs,
        )

    def test_latent_width(self):
        assert self.make_bundle(10).latent_width == 10

    def test_seed_length(self):
        bundle = self.make_bundle(12, n_bins=8)
        assert bundle.seed_length == 36

    def test_mismatched_encoders_rejected(self):
        with pytest.raises(ConfigurationError):
            WaveKeyModelBundle(
                imu_encoder=build_imu_encoder(8, rng=0),
                rf_encoder=build_rf_encoder(10, rng=1),
                decoder=build_decoder(8, rng=2),
            )

    def test_bad_eta_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_bundle(8, eta=0.7)

    def test_save_load_roundtrip(self, tmp_path):
        bundle = self.make_bundle(8, n_bins=8, eta=0.08)
        x = np.random.default_rng(3).normal(size=(2, 3, 200))
        expected = bundle.imu_encoder.forward(x)
        bundle.save(str(tmp_path))
        restored = WaveKeyModelBundle.load(str(tmp_path))
        assert restored.n_bins == 8
        assert restored.eta == pytest.approx(0.08)
        np.testing.assert_allclose(
            restored.imu_encoder.forward(x), expected, atol=1e-12
        )
