"""Tests for the command-line interface."""

import io
import os

import pytest

from repro import cli
from repro.core import pretrained
from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)


@pytest.fixture()
def tiny_asset(monkeypatch, tmp_path):
    """Point the CLI at a small untrained bundle on disk."""
    bundle = WaveKeyModelBundle(
        imu_encoder=build_imu_encoder(6, rng=0),
        rf_encoder=build_rf_encoder(6, rng=1),
        decoder=build_decoder(6, rng=2),
        n_bins=8,
        eta=0.2,
    )
    asset_dir = str(tmp_path / "bundle")
    bundle.save(asset_dir)
    monkeypatch.setattr(pretrained, "_ASSET_DIR", asset_dir)
    return bundle


class TestInspect:
    def test_prints_operating_point(self, tiny_asset):
        out = io.StringIO()
        code = cli.main(["inspect"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "l_f : 6" in text
        assert "eta" in text

    def test_missing_bundle_reports_error(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            pretrained, "_ASSET_DIR", str(tmp_path / "missing")
        )
        out = io.StringIO()
        code = cli.main(["inspect"], out=out)
        assert code == 3
        assert "error:" in out.getvalue()


class TestEstablish:
    def test_runs_end_to_end(self, tiny_asset):
        out = io.StringIO()
        code = cli.main(
            ["establish", "--seed", "3", "--key-bits", "128"], out=out
        )
        text = out.getvalue()
        assert code in (0, 1)  # untrained bundle may fail agreement
        assert "seed mismatch" in text


class TestSmoke:
    """One parametrized pass over every subcommand's happy path."""

    @pytest.mark.parametrize(
        "argv,expected_codes,expected_text",
        [
            (["inspect"], (0,), "eta"),
            (
                ["establish", "--seed", "3", "--key-bits", "128"],
                (0, 1),  # untrained bundle may fail agreement
                "seed mismatch",
            ),
            (["serve", "--dry-run"], (0,), "dry run: configuration OK"),
            (
                [
                    "serve", "--sessions", "1", "--workers", "1",
                    "--max-attempts", "1", "--seed", "5",
                ],
                (0, 1),
                "established",
            ),
            (
                [
                    "loadgen", "--sessions", "2", "--workers", "1",
                    "--max-attempts", "1", "--seed", "5",
                ],
                (0, 1),
                "offered sessions",
            ),
        ],
        ids=["inspect", "establish", "serve-dry-run", "serve", "loadgen"],
    )
    def test_subcommand(self, tiny_asset, argv, expected_codes,
                        expected_text):
        out = io.StringIO()
        code = cli.main(argv, out=out)
        assert code in expected_codes
        assert expected_text in out.getvalue()

    def test_console_entry_point_is_registered(self):
        tomllib = pytest.importorskip("tomllib")  # stdlib since 3.11
        pyproject = os.path.join(
            os.path.dirname(__file__), "..", "..", "pyproject.toml"
        )
        with open(pyproject, "rb") as fh:
            project = tomllib.load(fh)["project"]
        assert project["scripts"]["repro"] == "repro.cli:main"


class TestServeConfiguration:
    def test_dry_run_reports_batch_policy(self, tiny_asset):
        out = io.StringIO()
        code = cli.main(
            [
                "serve", "--dry-run", "--workers", "3",
                "--batch-size", "8", "--batch-wait-ms", "1.5",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "workers          : 3" in text
        assert "<= 8 windows or 1.5 ms" in text

    def test_invalid_config_is_a_clean_error(self, tiny_asset):
        out = io.StringIO()
        code = cli.main(["serve", "--dry-run", "--workers", "0"], out=out)
        assert code == 3
        assert "error:" in out.getvalue()


class TestObservability:
    def test_loadgen_trace_round_trips_through_obs_commands(
        self, tiny_asset, tmp_path
    ):
        trace = str(tmp_path / "trace.jsonl")
        metrics = str(tmp_path / "metrics.json")
        out = io.StringIO()
        code = cli.main(
            [
                "loadgen", "--sessions", "2", "--workers", "1",
                "--max-attempts", "1", "--seed", "5",
                "--trace-out", trace, "--metrics-out", metrics,
            ],
            out=out,
        )
        assert code in (0, 1)
        assert "trace:" in out.getvalue()
        # every line of the export is a well-formed span object
        import json as _json

        with open(trace, "r", encoding="utf-8") as fh:
            spans = [_json.loads(line) for line in fh if line.strip()]
        assert spans
        roots = [s for s in spans if s["name"] == "session"]
        assert len(roots) == 2

        out = io.StringIO()
        assert cli.main(["obs", "trace", trace], out=out) == 0
        rendered = out.getvalue()
        assert "session" in rendered and "encode" in rendered

        session_id = roots[0]["attributes"]["session_id"]
        out = io.StringIO()
        code = cli.main(
            ["obs", "trace", trace, "--session", session_id], out=out
        )
        assert code == 0
        assert session_id in out.getvalue()

        out = io.StringIO()
        assert cli.main(["obs", "metrics", metrics], out=out) == 0
        prom = out.getvalue()
        assert "# TYPE service_admitted counter" in prom
        assert 'pipeline_windows{encoder="imu_en"}' in prom
        assert 'service_total_s_bucket{le="+Inf"} 2' in prom

    def test_obs_trace_unknown_session_fails_cleanly(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text("")
        out = io.StringIO()
        code = cli.main(
            ["obs", "trace", str(trace), "--session", "nope"], out=out
        )
        assert code == 1
        assert "no spans" in out.getvalue()

    def test_establish_profile_prints_layer_table(self, tiny_asset):
        out = io.StringIO()
        code = cli.main(
            ["establish", "--seed", "3", "--key-bits", "128", "--profile"],
            out=out,
        )
        assert code in (0, 1)
        text = out.getvalue()
        assert "per-layer profile:" in text
        assert "imu_encoder/" in text


class TestAttack:
    def test_guess_campaign(self, tiny_asset):
        out = io.StringIO()
        code = cli.main(
            ["attack", "guess", "--trials", "20", "--seed", "2"], out=out
        )
        assert code in (0, 2)
        assert "random-guessing" in out.getvalue()

    def test_argparse_rejects_unknown(self, tiny_asset):
        with pytest.raises(SystemExit):
            cli.main(["attack", "nonsense"])
