"""Tests for the latent-decorrelation regularizer (DESIGN.md deviation)."""

import numpy as np
import pytest

from repro.core.training import JointTrainingConfig, train_wavekey_models
from repro.datasets.normalization import normalize_imu_matrix
from repro.errors import TrainingError


def effective_rank(features: np.ndarray) -> float:
    c = np.corrcoef(features.T)
    eigenvalues = np.linalg.eigvalsh(c)
    return float(eigenvalues.sum() ** 2 / (eigenvalues**2).sum())


class TestDecorrelation:
    def test_config_validation(self):
        with pytest.raises(TrainingError):
            JointTrainingConfig(decorrelation_weight=-1.0)

    def test_decorrelation_raises_effective_rank(self, mini_dataset):
        latent = 8
        base = dict(
            latent_width=latent, epochs=12, batch_size=64,
            learning_rate=3e-3, reconstruction_weight=0.005,
        )
        collapsed = train_wavekey_models(
            mini_dataset,
            JointTrainingConfig(**base, decorrelation_weight=0.0),
            rng=1,
        )
        diverse = train_wavekey_models(
            mini_dataset,
            JointTrainingConfig(**base, decorrelation_weight=1.0),
            rng=1,
        )
        x = np.stack(
            [normalize_imu_matrix(s.a_matrix) for s in mini_dataset]
        )
        rank_collapsed = effective_rank(
            collapsed.bundle.imu_encoder.forward(x)
        )
        rank_diverse = effective_rank(diverse.bundle.imu_encoder.forward(x))
        assert rank_diverse > rank_collapsed
        assert rank_diverse > 0.7 * latent

    def test_penalty_gradient_direction(self):
        """For perfectly correlated latents the decorrelation gradient
        pushes the batch toward lower off-diagonal covariance."""
        rng = np.random.default_rng(0)
        base_col = rng.normal(size=(32, 1))
        f = np.repeat(base_col, 4, axis=1)  # rank-1 batch
        b = f.shape[0]
        c = f.T @ f / b
        np.fill_diagonal(c, 0.0)
        grad = (4.0 / b) * (f @ c)
        penalty = lambda z: float(
            np.sum((z.T @ z / b - np.diag(np.diag(z.T @ z / b))) ** 2)
        )
        before = penalty(f)
        after = penalty(f - 1e-3 * grad)
        assert after < before
