"""Tests for the WaveKeySystem facade."""

import numpy as np
import pytest

from repro.core import WaveKeySystem
from repro.crypto import generate_dh_group
from repro.gesture import default_volunteers, sample_gesture
from repro.protocol import KeyAgreementConfig
from repro.utils.bits import BitSequence

TEST_GROUP = generate_dh_group(96, rng=77)


@pytest.fixture(scope="module")
def system(mini_bundle):
    # A permissive eta so even the briefly trained mini bundle agrees;
    # the converged-behaviour tests live in tests/integration.
    config = KeyAgreementConfig(
        key_length_bits=128, eta=0.3, group=TEST_GROUP
    )
    return WaveKeySystem(mini_bundle, agreement_config=config)


class TestAcquisition:
    def test_acquire_returns_seed_pair(self, system):
        trajectory = sample_gesture(default_volunteers()[0], rng=1)
        s_m, s_r = system.acquire(trajectory, rng=2)
        assert len(s_m) == len(s_r) == system.pipeline.seed_length

    def test_default_hardware_roster(self, system):
        assert system.device.name == "galaxy-watch"
        assert system.tag.name == "alien-9640-a"
        assert system.environment.name == "environment-1"


class TestEstablishKey:
    def test_outcome_structure(self, system):
        result = system.establish_key(rng=3)
        assert result.seed_mobile is not None
        assert result.elapsed_s > 2.0
        if result.success:
            assert len(result.key) == 128
            assert result.seed_mismatch_rate <= 0.3
        else:
            assert result.key is None
            assert result.failure_reason

    def test_reproducible_seeds(self, system):
        r1 = system.establish_key(rng=5)
        r2 = system.establish_key(rng=5)
        assert r1.seed_mobile == r2.seed_mobile
        assert r1.success == r2.success

    def test_explicit_trajectory(self, system):
        trajectory = sample_gesture(default_volunteers()[2], rng=6)
        result = system.establish_key(trajectory=trajectory, rng=7)
        assert result.seed_mobile is not None

    def test_agree_on_seeds_identical(self, system):
        seed = BitSequence.random(
            system.pipeline.seed_length, np.random.default_rng(8)
        )
        result = system.agree_on_seeds(seed, seed, rng=9)
        assert result.success
        assert result.seed_mismatch_rate == 0.0

    def test_agree_on_seeds_disjoint_fails(self, system):
        rng = np.random.default_rng(10)
        a = BitSequence.random(system.pipeline.seed_length, rng)
        b = BitSequence(1 - a.array)
        result = system.agree_on_seeds(a, b, rng=11)
        assert not result.success
        assert result.key is None
