"""Tests for pretrained-bundle access."""

import os

import pytest

from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.core import pretrained
from repro.errors import ConfigurationError


class TestPretrainedAccess:
    def test_missing_bundle_raises_with_instructions(self, monkeypatch,
                                                     tmp_path):
        monkeypatch.setattr(pretrained, "_ASSET_DIR", str(tmp_path / "nope"))
        assert not pretrained.has_default_bundle()
        with pytest.raises(ConfigurationError, match="train_default_bundle"):
            pretrained.load_default_bundle()

    def test_roundtrip_via_asset_dir(self, monkeypatch, tmp_path):
        bundle = WaveKeyModelBundle(
            imu_encoder=build_imu_encoder(6, rng=0),
            rf_encoder=build_rf_encoder(6, rng=1),
            decoder=build_decoder(6, rng=2),
            n_bins=8,
            eta=0.11,
        )
        asset_dir = str(tmp_path / "bundle")
        bundle.save(asset_dir)
        monkeypatch.setattr(pretrained, "_ASSET_DIR", asset_dir)
        assert pretrained.has_default_bundle()
        loaded = pretrained.load_default_bundle()
        assert loaded.latent_width == 6
        assert loaded.eta == pytest.approx(0.11)

    def test_default_dir_inside_package(self):
        directory = pretrained.default_bundle_dir()
        assert os.path.basename(directory) == "default_bundle"
        assert "repro" in directory
