"""Tests for pretrained-bundle access."""

import json
import os
import zipfile

import pytest

from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.core import pretrained
from repro.errors import ConfigurationError


class TestPretrainedAccess:
    def test_missing_bundle_raises_with_instructions(self, monkeypatch,
                                                     tmp_path):
        monkeypatch.setattr(pretrained, "_ASSET_DIR", str(tmp_path / "nope"))
        assert not pretrained.has_default_bundle()
        with pytest.raises(ConfigurationError, match="train_default_bundle"):
            pretrained.load_default_bundle()

    def test_roundtrip_via_asset_dir(self, monkeypatch, tmp_path):
        bundle = WaveKeyModelBundle(
            imu_encoder=build_imu_encoder(6, rng=0),
            rf_encoder=build_rf_encoder(6, rng=1),
            decoder=build_decoder(6, rng=2),
            n_bins=8,
            eta=0.11,
        )
        asset_dir = str(tmp_path / "bundle")
        bundle.save(asset_dir)
        monkeypatch.setattr(pretrained, "_ASSET_DIR", asset_dir)
        assert pretrained.has_default_bundle()
        loaded = pretrained.load_default_bundle()
        assert loaded.latent_width == 6
        assert loaded.eta == pytest.approx(0.11)

    def test_default_dir_inside_package(self):
        directory = pretrained.default_bundle_dir()
        assert os.path.basename(directory) == "default_bundle"
        assert "repro" in directory


class TestAssetIntegrity:
    """Guards against shipping corrupted weight archives.

    ``np.load`` reads npz archives through :mod:`zipfile`; a truncated
    or bit-rotted asset fails deep inside model loading with an opaque
    ``BadZipFile``.  This test pins the failure to the exact file so a
    broken asset is caught at the door.
    """

    REQUIRED = ("imu_en.npz", "rf_en.npz", "de.npz", "bundle.json")

    @pytest.fixture(autouse=True)
    def _need_assets(self):
        if not pretrained.has_default_bundle():
            pytest.skip("pretrained bundle not built yet "
                        "(run scripts/train_default_bundle.py)")

    def test_all_files_present(self):
        directory = pretrained.default_bundle_dir()
        for name in self.REQUIRED:
            assert os.path.exists(os.path.join(directory, name)), (
                f"bundle asset {name} is missing"
            )

    def test_npz_archives_are_valid_zipfiles(self):
        directory = pretrained.default_bundle_dir()
        for name in self.REQUIRED:
            if not name.endswith(".npz"):
                continue
            path = os.path.join(directory, name)
            assert zipfile.is_zipfile(path), (
                f"bundle asset {name} is not a valid zip archive "
                "(corrupted? re-run scripts/train_default_bundle.py)"
            )
            with zipfile.ZipFile(path) as archive:
                assert archive.testzip() is None, (
                    f"bundle asset {name} has a corrupt member"
                )
                assert archive.namelist(), f"{name} is empty"

    def test_metadata_is_consistent(self):
        directory = pretrained.default_bundle_dir()
        with open(os.path.join(directory, "bundle.json")) as fh:
            meta = json.load(fh)
        assert meta["n_bins"] >= 2
        assert 0.0 < meta["eta"] < 0.5

    def test_bundle_loads_end_to_end(self, default_bundle):
        assert default_bundle.latent_width >= 1
        assert default_bundle.eta > 0.0
