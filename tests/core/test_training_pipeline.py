"""Tests for joint training and the key-seed pipeline."""

import numpy as np
import pytest

from repro.core import KeySeedPipeline
from repro.core.training import (
    JointTrainingConfig,
    continue_training,
    evaluate_joint_loss,
    prepare_arrays,
    train_wavekey_models,
)
from repro.errors import TrainingError


class TestJointTraining:
    def test_loss_decreases(self, mini_dataset):
        config = JointTrainingConfig(
            latent_width=6, epochs=10, batch_size=32, learning_rate=2e-3
        )
        result = train_wavekey_models(mini_dataset, config, rng=1)
        assert result.loss_history[-1] < result.loss_history[0]
        assert len(result.loss_history) == 10

    def test_alignment_term_decreases(self, mini_dataset):
        config = JointTrainingConfig(
            latent_width=6, epochs=10, batch_size=32, learning_rate=2e-3
        )
        result = train_wavekey_models(mini_dataset, config, rng=2)
        assert result.alignment_history[-1] < result.alignment_history[0]

    def test_continue_training_resumes(self, mini_dataset):
        config = JointTrainingConfig(latent_width=6, epochs=4, batch_size=32)
        result = train_wavekey_models(mini_dataset, config, rng=3)
        bundle = result.bundle
        more = continue_training(
            bundle.imu_encoder, bundle.rf_encoder, bundle.decoder,
            mini_dataset, config, rng=4,
        )
        assert len(more.loss_history) == 4

    def test_config_validation(self):
        with pytest.raises(TrainingError):
            JointTrainingConfig(latent_width=0)
        with pytest.raises(TrainingError):
            JointTrainingConfig(epochs=0)
        with pytest.raises(TrainingError):
            JointTrainingConfig(reconstruction_weight=-1.0)

    def test_prepare_arrays_shapes(self, mini_dataset):
        x_imu, x_rfid, target = prepare_arrays(mini_dataset)
        n = len(mini_dataset)
        assert x_imu.shape == (n, 3, 200)
        assert x_rfid.shape == (n, 2, 400)
        assert target.shape == (n, 400)

    def test_evaluate_joint_loss_finite(self, mini_bundle, mini_dataset):
        x_imu, x_rfid, target = prepare_arrays(mini_dataset)
        loss = evaluate_joint_loss(mini_bundle, x_imu, x_rfid, target)
        assert np.isfinite(loss) and loss > 0


class TestKeySeedPipeline:
    def test_seed_lengths(self, mini_bundle):
        pipeline = KeySeedPipeline(mini_bundle)
        assert pipeline.seed_length == mini_bundle.seed_length

    def test_seeds_from_matrices(self, mini_bundle, mini_dataset):
        pipeline = KeySeedPipeline(mini_bundle)
        sample = mini_dataset[0]
        s_m = pipeline.imu_keyseed(sample.a_matrix)
        s_r = pipeline.rfid_keyseed(sample.r_matrix)
        assert len(s_m) == len(s_r) == pipeline.seed_length

    def test_features_standardized(self, mini_bundle, mini_dataset):
        pipeline = KeySeedPipeline(mini_bundle)
        f = np.stack([
            pipeline.imu_features(s.a_matrix) for s in mini_dataset
        ])
        # Batch-norm keeps latent elements near N(0, 1) over the
        # training distribution.
        assert np.abs(f.mean(axis=0)).max() < 0.7
        assert f.std(axis=0).max() < 2.0

    def test_batch_matches_single(self, mini_bundle, mini_dataset):
        pipeline = KeySeedPipeline(mini_bundle)
        a = mini_dataset.a_matrices()[:3]
        r = mini_dataset.r_matrices()[:3]
        pairs = pipeline.batch_seed_pairs(a, r)
        for i, (s_m, s_r) in enumerate(pairs):
            assert s_m == pipeline.imu_keyseed(a[i])
            assert s_r == pipeline.rfid_keyseed(r[i])

    def test_mismatch_rates_in_unit_interval(self, mini_bundle,
                                             mini_dataset):
        pipeline = KeySeedPipeline(mini_bundle)
        rates = pipeline.seed_mismatch_rates(
            mini_dataset.a_matrices(), mini_dataset.r_matrices()
        )
        assert rates.shape == (len(mini_dataset),)
        assert np.all((0 <= rates) & (rates <= 1))

    def test_benign_beats_cross_pair(self, mini_bundle, mini_dataset):
        """Even a briefly trained model aligns true pairs better than
        shuffled pairs — the cross-modal signal is real."""
        pipeline = KeySeedPipeline(mini_bundle)
        a = mini_dataset.a_matrices()
        r = mini_dataset.r_matrices()
        benign = pipeline.seed_mismatch_rates(a, r).mean()
        perm = np.random.default_rng(0).permutation(len(a))
        crossed = pipeline.seed_mismatch_rates(a, r[perm]).mean()
        assert benign < crossed
