"""Failure-injection tests: malformed and tampered protocol messages.

The agreement must fail *safely* — no exception escapes
``run_key_agreement``; every injected fault surfaces as an unsuccessful
outcome (or a typed ProtocolError at the party API level), never as a
mismatched pair of "successful" keys.
"""

import numpy as np
import pytest

from repro.crypto import generate_dh_group
from repro.errors import ProtocolError
from repro.protocol import (
    AgreementParty,
    KeyAgreementConfig,
    OTAnnounce,
    OTCiphertextBatch,
    OTResponse,
    ReconciliationChallenge,
    SimulatedTransport,
    run_key_agreement,
)
from repro.protocol.messages import ConfirmationResponse
from repro.utils.bits import BitSequence

TEST_GROUP = generate_dh_group(96, rng=55)


def make_config(**kwargs):
    defaults = dict(key_length_bits=128, eta=0.1, group=TEST_GROUP)
    defaults.update(kwargs)
    return KeyAgreementConfig(**defaults)


def make_parties(seed=1):
    rng = np.random.default_rng(seed)
    s = BitSequence.random(36, rng)
    config = make_config()
    mobile = AgreementParty("mobile", s, config, rng=2,
                            own_sequences_first=True)
    server = AgreementParty("server", s, config, rng=3,
                            own_sequences_first=False)
    return mobile, server, config


def interceptor_for(target_type, mutate):
    def intercept(sender, receiver, message):
        if isinstance(message, target_type):
            return mutate(message), 0.0
        return message, 0.0

    return intercept


class TestTamperedMessages:
    def _run_with_interceptor(self, intercept, seed=4):
        rng = np.random.default_rng(seed)
        s = BitSequence.random(36, rng)
        return run_key_agreement(
            s, s, make_config(),
            transport=SimulatedTransport(interceptor=intercept),
            rng=seed,
        )

    def test_truncated_announce_fails_cleanly(self):
        outcome = self._run_with_interceptor(
            interceptor_for(
                OTAnnounce,
                lambda m: OTAnnounce(m.sender, m.elements[:-1]),
            )
        )
        assert not outcome.success
        assert "protocol" in outcome.failure_reason

    def test_out_of_group_announce_fails_cleanly(self):
        outcome = self._run_with_interceptor(
            interceptor_for(
                OTAnnounce,
                lambda m: OTAnnounce(
                    m.sender, (TEST_GROUP.prime,) + m.elements[1:]
                ),
            )
        )
        assert not outcome.success

    def test_swapped_response_elements_break_key(self):
        outcome = self._run_with_interceptor(
            interceptor_for(
                OTResponse,
                lambda m: OTResponse(
                    m.sender, m.elements[::-1]
                ),
            )
        )
        assert not outcome.success

    def test_single_corrupted_ciphertext_absorbed_by_ecc(self):
        """One corrupted OT pair damages one key segment — inside the
        reconciliation radius, so the run still succeeds with MATCHING
        keys (the ECC treats it like a seed mismatch)."""
        from repro.crypto.ot import OTCiphertexts

        def flip_one(m):
            pairs = list(m.pairs)
            first = pairs[0]
            pairs[0] = OTCiphertexts(
                e0=bytes([first.e0[0] ^ 0xFF]) + first.e0[1:],
                e1=bytes([first.e1[0] ^ 0xFF]) + first.e1[1:],
            )
            return OTCiphertextBatch(m.sender, tuple(pairs))

        outcome = self._run_with_interceptor(
            interceptor_for(OTCiphertextBatch, flip_one)
        )
        if outcome.success:
            assert outcome.keys_match

    def test_many_corrupted_ciphertexts_break_key(self):
        """Corruption beyond the ECC radius must fail the agreement."""
        from repro.crypto.ot import OTCiphertexts

        def flip_many(m):
            pairs = list(m.pairs)
            for i in range(10):  # radius is floor(0.1 * 36) = 3
                p = pairs[i]
                pairs[i] = OTCiphertexts(
                    e0=bytes([p.e0[0] ^ 0xFF]) + p.e0[1:],
                    e1=bytes([p.e1[0] ^ 0xFF]) + p.e1[1:],
                )
            return OTCiphertextBatch(m.sender, tuple(pairs))

        outcome = self._run_with_interceptor(
            interceptor_for(OTCiphertextBatch, flip_many)
        )
        assert not outcome.success

    def test_corrupted_sketch_fails_confirmation(self):
        def flip(m):
            bits = m.sketch.array.copy()
            bits[: len(bits) // 2] ^= 1
            return ReconciliationChallenge(
                m.sender, BitSequence(bits), m.nonce
            )

        outcome = self._run_with_interceptor(
            interceptor_for(ReconciliationChallenge, flip)
        )
        assert not outcome.success

    def test_corrupted_confirmation_tag_detected(self):
        def flip(m):
            return ConfirmationResponse(
                m.sender, bytes([m.tag[0] ^ 1]) + m.tag[1:]
            )

        outcome = self._run_with_interceptor(
            interceptor_for(ConfirmationResponse, flip)
        )
        assert not outcome.success
        assert "agreement" in outcome.failure_reason

    def test_no_injected_fault_ever_yields_mismatched_success(self):
        """Property over a batch of random tamperings: success implies
        matching keys."""
        rng = np.random.default_rng(9)

        def random_tamper(sender, receiver, message):
            if isinstance(message, OTResponse) and rng.random() < 0.5:
                elements = list(message.elements)
                i = rng.integers(0, len(elements))
                elements[i] = TEST_GROUP.power(
                    TEST_GROUP.random_exponent(rng)
                )
                return OTResponse(message.sender, tuple(elements)), 0.0
            return message, 0.0

        for seed in range(5):
            s = BitSequence.random(36, np.random.default_rng(seed))
            outcome = run_key_agreement(
                s, s, make_config(),
                transport=SimulatedTransport(interceptor=random_tamper),
                rng=seed,
            )
            if outcome.success:
                assert outcome.keys_match


class TestPartyApiMisuse:
    def test_double_challenge_requires_preliminary_key(self):
        mobile, _, _ = make_parties()
        with pytest.raises(ProtocolError):
            mobile.craft_challenge()

    def test_verify_without_challenge(self):
        mobile, _, _ = make_parties()
        with pytest.raises(ProtocolError):
            mobile.verify_confirmation(
                ConfirmationResponse("server", b"x" * 32)
            )

    def test_session_key_before_completion(self):
        mobile, _, _ = make_parties()
        with pytest.raises(ProtocolError):
            mobile.session_key()

    def test_session_key_rejects_short_reconciled_key(self):
        # A reconciled key shorter than the requested l_k must be a
        # hard error, never a silently weaker key.
        mobile, _, _ = make_parties()
        mobile.final_key = BitSequence.random(
            64, np.random.default_rng(11)
        )
        with pytest.raises(ProtocolError, match="key_length_bits"):
            mobile.session_key()

    def test_receive_wrong_batch_size(self):
        mobile, server, config = make_parties()
        announce_m = mobile.craft_announce()
        response_r = server.craft_response(announce_m)
        batch = mobile.craft_ciphertexts(response_r)
        with pytest.raises(ProtocolError):
            server.receive_ciphertexts(
                OTCiphertextBatch(batch.sender, batch.pairs[:-1])
            )

    def test_short_seed_rejected(self):
        with pytest.raises(Exception):
            AgreementParty("x", BitSequence([1]), make_config(), rng=0)
