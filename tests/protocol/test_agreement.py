"""Tests for the bidirectional OT key agreement (Fig. 4)."""

import numpy as np
import pytest

from repro.crypto import generate_dh_group
from repro.errors import ConfigurationError, ProtocolError
from repro.protocol import (
    AgreementParty,
    KeyAgreementConfig,
    ProtocolClock,
    SimulatedTransport,
    run_key_agreement,
)
from repro.utils.bits import BitSequence

# A small group keeps the ~100 modexps per run fast in unit tests.
TEST_GROUP = generate_dh_group(96, rng=99)


def make_config(**kwargs):
    defaults = dict(key_length_bits=128, eta=0.1, group=TEST_GROUP)
    defaults.update(kwargs)
    return KeyAgreementConfig(**defaults)


def seeds_with_mismatches(length, n_flips, seed=0):
    rng = np.random.default_rng(seed)
    s_m = BitSequence.random(length, rng)
    flipped = s_m.array.copy()
    if n_flips:
        idx = rng.choice(length, size=n_flips, replace=False)
        flipped[idx] ^= 1
    return s_m, BitSequence(flipped)


class TestConfig:
    def test_segment_bits_formula(self):
        config = make_config(key_length_bits=256)
        assert config.segment_bits(48) == 3  # ceil(256 / 96)
        assert config.material_bits(48) == 288

    def test_ecc_tolerance_matches_eq4_radius(self):
        config = make_config(key_length_bits=256, eta=0.04)
        # floor(0.04 * 48) = 1 tolerated seed mismatch (Eq. 4 radius).
        assert config.tolerated_seed_mismatches(48) == 1
        assert make_config(eta=0.1).tolerated_seed_mismatches(48) == 4

    def test_announce_deadline(self):
        config = make_config(tau_s=0.12, gesture_window_s=2.0)
        assert config.announce_deadline_s == pytest.approx(2.12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_config(key_length_bits=4)
        with pytest.raises(ConfigurationError):
            make_config(eta=0.6)


class TestSuccessfulAgreement:
    def test_identical_seeds(self):
        s_m, s_r = seeds_with_mismatches(36, 0)
        outcome = run_key_agreement(s_m, s_r, make_config(), rng=1)
        assert outcome.success
        assert outcome.keys_match
        assert len(outcome.mobile_key) == 128

    def test_seeds_within_eta(self):
        # eta = 0.1 over 36 bits tolerates ceil(3.6) = 4 mismatches.
        s_m, s_r = seeds_with_mismatches(36, 3)
        outcome = run_key_agreement(s_m, s_r, make_config(), rng=2)
        assert outcome.success and outcome.keys_match
        assert outcome.seed_mismatch_bits == 3

    def test_key_has_requested_length(self):
        s_m, s_r = seeds_with_mismatches(36, 0)
        for l_k in (128, 168, 256):
            outcome = run_key_agreement(
                s_m, s_r, make_config(key_length_bits=l_k), rng=3
            )
            assert len(outcome.mobile_key) == l_k

    def test_keys_differ_across_runs(self):
        """The key comes from fresh OT randomness, not from the seeds."""
        s_m, s_r = seeds_with_mismatches(36, 0)
        k1 = run_key_agreement(s_m, s_r, make_config(), rng=4).mobile_key
        k2 = run_key_agreement(s_m, s_r, make_config(), rng=5).mobile_key
        assert k1 != k2

    def test_elapsed_includes_gesture(self):
        s_m, s_r = seeds_with_mismatches(36, 0)
        outcome = run_key_agreement(s_m, s_r, make_config(), rng=6)
        assert outcome.elapsed_s > 2.0


class TestPooledAgreement:
    def test_pool_capability_marker(self):
        """The access server keys ``pool=`` forwarding off this marker;
        injected test doubles without it keep their exact signatures."""
        assert getattr(run_key_agreement, "accepts_ot_pool", False)

    def test_pooled_run_succeeds_and_hits(self):
        from repro.crypto import OTMaterialPool

        config = make_config()
        pool = OTMaterialPool(depth=128, rng=11)
        pool.register(config.group)
        pool.fill()
        s_m, s_r = seeds_with_mismatches(36, 2)
        outcome = run_key_agreement(s_m, s_r, config, rng=12, pool=pool)
        assert outcome.success and outcome.keys_match
        counters = pool.metrics.snapshot()["counters"]
        assert counters['crypto.pool.hit{group="random-96",kind="sender"}'] > 0
        assert counters['crypto.pool.hit{group="random-96",kind="receiver"}'] > 0

    def test_exhausted_pool_still_succeeds(self):
        """Pool exhaustion must degrade to inline compute, never fail
        an agreement."""
        from repro.crypto import OTMaterialPool

        config = make_config()
        pool = OTMaterialPool(depth=4, rng=13)
        pool.register(config.group)
        pool.fill()  # 4 tuples per kind vs 2 * 36 needed
        s_m, s_r = seeds_with_mismatches(36, 0)
        outcome = run_key_agreement(s_m, s_r, config, rng=14, pool=pool)
        assert outcome.success and outcome.keys_match
        counters = pool.metrics.snapshot()["counters"]
        assert counters['crypto.pool.miss{group="random-96",kind="sender"}'] > 0


class TestFailureModes:
    def test_seeds_beyond_eta_fail(self):
        s_m, s_r = seeds_with_mismatches(36, 18)
        outcome = run_key_agreement(s_m, s_r, make_config(), rng=7)
        assert not outcome.success
        assert outcome.mobile_key is None
        assert "agreement" in outcome.failure_reason

    def test_random_seeds_fail(self):
        rng = np.random.default_rng(8)
        s_m = BitSequence.random(36, rng)
        s_r = BitSequence.random(36, rng)
        outcome = run_key_agreement(s_m, s_r, make_config(), rng=9)
        assert not outcome.success

    def test_deadline_violation_discards_instance(self):
        s_m, s_r = seeds_with_mismatches(36, 0)
        slow = SimulatedTransport(base_latency_s=0.5)  # 500 ms per hop
        outcome = run_key_agreement(
            s_m, s_r, make_config(), transport=slow, rng=10
        )
        assert not outcome.success
        assert "deadline" in outcome.failure_reason

    def test_unequal_seed_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            run_key_agreement(
                BitSequence.zeros(36), BitSequence.zeros(35), make_config()
            )


class TestAgreementParty:
    def test_message_flow_ordering_enforced(self):
        config = make_config()
        party = AgreementParty(
            "mobile", BitSequence.random(36, np.random.default_rng(1)),
            config, rng=1,
        )
        with pytest.raises(ProtocolError):
            party.build_preliminary_key()
        with pytest.raises(ProtocolError):
            party.craft_challenge()

    def test_wrong_batch_sizes_rejected(self):
        config = make_config()
        rng = np.random.default_rng(2)
        party = AgreementParty(
            "mobile", BitSequence.random(36, rng), config, rng=2
        )
        other = AgreementParty(
            "server", BitSequence.random(24, rng), config, rng=3
        )
        announce = other.craft_announce()  # 24 instances, party expects 36
        with pytest.raises(ProtocolError):
            party.craft_response(announce)

    def test_preliminary_keys_match_where_seeds_agree(self):
        config = make_config()
        rng = np.random.default_rng(4)
        s_m, s_r = seeds_with_mismatches(36, 5, seed=4)
        mobile = AgreementParty("mobile", s_m, config, rng=5,
                                own_sequences_first=True)
        server = AgreementParty("server", s_r, config, rng=6,
                                own_sequences_first=False)
        announce_m = mobile.craft_announce()
        announce_r = server.craft_announce()
        response_m = mobile.craft_response(announce_r)
        response_r = server.craft_response(announce_m)
        cipher_m = mobile.craft_ciphertexts(response_r)
        cipher_r = server.craft_ciphertexts(response_m)
        mobile.receive_ciphertexts(cipher_r)
        server.receive_ciphertexts(cipher_m)
        k_m = mobile.build_preliminary_key()
        k_r = server.build_preliminary_key()
        l_b = config.segment_bits(36)
        for i in range(36):
            seg_m = k_m[2 * i * l_b : 2 * (i + 1) * l_b]
            seg_r = k_r[2 * i * l_b : 2 * (i + 1) * l_b]
            if s_m[i] == s_r[i]:
                assert seg_m == seg_r, f"segment {i} should match"
