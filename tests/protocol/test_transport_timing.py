"""Tests for the simulated transport, protocol clock, and messages."""

import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    MessageDropped,
    ProtocolError,
)
from repro.protocol import (
    ConfirmationResponse,
    OTAnnounce,
    ProtocolClock,
    ReconciliationChallenge,
    SimulatedTransport,
)
from repro.utils.bits import BitSequence


class TestProtocolClock:
    def test_advance_accumulates(self):
        clock = ProtocolClock(start_s=2.0)
        clock.advance(0.05)
        clock.advance(0.01)
        assert clock.now == pytest.approx(2.06)

    def test_measure_adds_real_time(self):
        clock = ProtocolClock()
        with clock.measure():
            time.sleep(0.02)
        assert clock.now >= 0.02

    def test_deadline_check(self):
        clock = ProtocolClock(start_s=2.2)
        with pytest.raises(DeadlineExceeded):
            clock.check_deadline(2.12, "M_A")
        clock2 = ProtocolClock(start_s=2.05)
        clock2.check_deadline(2.12, "M_A")  # fine

    def test_no_backwards(self):
        with pytest.raises(ConfigurationError):
            ProtocolClock().advance(-1.0)


class TestTransport:
    def test_latency_and_bandwidth(self):
        transport = SimulatedTransport(
            base_latency_s=0.01, bandwidth_bytes_per_s=1000.0
        )
        message = OTAnnounce(sender="mobile", elements=(1 << 799,))
        clock = ProtocolClock()
        transport.deliver("mobile", "server", message, clock)
        assert clock.now == pytest.approx(0.01 + 100 / 1000.0)

    def test_taps_see_original_message(self):
        seen = []
        transport = SimulatedTransport(taps=[
            lambda s, r, m: seen.append((s, r, m))
        ])
        message = OTAnnounce(sender="mobile", elements=(42,))
        transport.deliver("mobile", "server", message, ProtocolClock())
        assert seen == [("mobile", "server", message)]

    def test_interceptor_substitutes(self):
        replacement = OTAnnounce(sender="mobile", elements=(7,))

        def mitm(sender, receiver, message):
            return replacement, 0.25

        transport = SimulatedTransport(interceptor=mitm)
        clock = ProtocolClock()
        delivered = transport.deliver(
            "mobile", "server",
            OTAnnounce(sender="mobile", elements=(42,)), clock,
        )
        assert delivered is replacement
        assert clock.now >= 0.25

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SimulatedTransport(base_latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            SimulatedTransport(bandwidth_bytes_per_s=0.0)

    def test_zero_latency_delivery(self):
        """An idealized channel: the clock still advances only by the
        (tiny) serialization time, and delivery counts are kept."""
        transport = SimulatedTransport(
            base_latency_s=0.0, bandwidth_bytes_per_s=1e12
        )
        clock = ProtocolClock(start_s=2.0)
        message = OTAnnounce(sender="mobile", elements=(42,))
        delivered = transport.deliver("mobile", "server", message, clock)
        assert delivered is message
        assert clock.now == pytest.approx(2.0, abs=1e-9)
        assert transport.delivered_count == 1
        assert transport.dropped_count == 0

    def test_interceptor_drop_raises_and_counts(self):
        dropped = []

        def jammer(sender, receiver, message):
            dropped.append((sender, receiver))
            return None, 0.1

        transport = SimulatedTransport(interceptor=jammer)
        clock = ProtocolClock()
        with pytest.raises(MessageDropped, match="OTAnnounce from mobile"):
            transport.deliver(
                "mobile", "server",
                OTAnnounce(sender="mobile", elements=(42,)), clock,
            )
        assert dropped == [("mobile", "server")]
        assert transport.dropped_count == 1
        assert transport.delivered_count == 0
        # The relay delay was spent before the drop was discovered.
        assert clock.now >= 0.1

    def test_taps_fire_in_registration_order_before_interception(self):
        trace = []
        replacement = OTAnnounce(sender="mobile", elements=(7,))
        original = OTAnnounce(sender="mobile", elements=(42,))

        transport = SimulatedTransport(
            taps=[
                lambda s, r, m: trace.append(("tap1", m)),
                lambda s, r, m: trace.append(("tap2", m)),
            ],
            interceptor=lambda s, r, m: (
                trace.append(("mitm", m)) or (replacement, 0.0)
            ),
        )
        delivered = transport.deliver(
            "mobile", "server", original, ProtocolClock()
        )
        # Eavesdroppers observe the genuine message, in order, before
        # the MitM substitutes it.
        assert [t[0] for t in trace] == ["tap1", "tap2", "mitm"]
        assert all(t[1] is original for t in trace)
        assert delivered is replacement

    def test_pure_relay_interceptor_is_transparent(self):
        transport = SimulatedTransport(
            base_latency_s=0.0,
            bandwidth_bytes_per_s=1e12,
            interceptor=lambda s, r, m: (m, 0.0),
        )
        message = OTAnnounce(sender="mobile", elements=(42,))
        clock = ProtocolClock()
        assert transport.deliver("mobile", "server", message, clock) is message
        assert clock.now == pytest.approx(0.0, abs=1e-9)
        assert transport.delivered_count == 1


class TestMessages:
    def test_empty_announce_rejected(self):
        with pytest.raises(ProtocolError):
            OTAnnounce(sender="m", elements=())

    def test_wire_size_counts_bytes(self):
        message = OTAnnounce(sender="m", elements=(255, 256))
        assert message.wire_size_bytes() == 1 + 2

    def test_challenge_nonce_minimum(self):
        with pytest.raises(ProtocolError):
            ReconciliationChallenge(
                sender="m", sketch=BitSequence.zeros(10), nonce=b"short"
            )

    def test_confirmation_tag_length(self):
        ConfirmationResponse(sender="s", tag=b"x" * 32)
        with pytest.raises(ProtocolError):
            ConfirmationResponse(sender="s", tag=b"x" * 16)
