"""Tests for dataset generation and input normalization."""

import numpy as np
import pytest

from repro.datasets import (
    DatasetConfig,
    generate_dataset,
    generate_sample,
    normalize_imu_matrix,
    normalize_rfid_matrix,
    rfid_magnitude_target,
)
from repro.errors import ConfigurationError, ShapeError
from repro.gesture import default_volunteers, sample_gesture
from repro.imu import default_mobile_devices
from repro.rfid import default_environments, default_tags


class TestNormalization:
    def test_imu_shape_and_scale(self):
        a = np.random.default_rng(0).normal(0, 9.81, size=(200, 3))
        x = normalize_imu_matrix(a)
        assert x.shape == (3, 200)
        assert abs(x.std() - 1.0) < 0.2

    def test_rfid_kills_phase_offset(self):
        r = np.column_stack([
            np.linspace(0, 4, 400) + 100.0,  # arbitrary cable offset
            np.ones(400),
        ])
        r2 = r.copy()
        r2[:, 0] -= 100.0
        np.testing.assert_allclose(
            normalize_rfid_matrix(r), normalize_rfid_matrix(r2), atol=1e-12
        )

    def test_rfid_kills_magnitude_scale(self):
        rng = np.random.default_rng(1)
        mag = 1.0 + 0.1 * rng.normal(size=400)
        r1 = np.column_stack([np.zeros(400), mag])
        r5 = np.column_stack([np.zeros(400), 5.0 * mag])
        np.testing.assert_allclose(
            normalize_rfid_matrix(r1)[1], normalize_rfid_matrix(r5)[1],
            atol=1e-9,
        )

    def test_magnitude_target_matches_channel(self):
        r = np.column_stack([
            np.zeros(400), 1.0 + 0.05 * np.sin(np.linspace(0, 6, 400)),
        ])
        np.testing.assert_allclose(
            rfid_magnitude_target(r), normalize_rfid_matrix(r)[1]
        )

    def test_rejects_nonpositive_magnitude(self):
        r = np.column_stack([np.zeros(400), np.zeros(400)])
        with pytest.raises(ShapeError):
            normalize_rfid_matrix(r)


class TestGenerateSample:
    def test_shapes_and_metadata(self):
        trajectory = sample_gesture(default_volunteers()[0], rng=1)
        sample = generate_sample(
            trajectory,
            default_mobile_devices()[0],
            default_tags()[0],
            default_environments()[0],
            rng=2,
            volunteer="v1",
        )
        assert sample.a_matrix.shape == (200, 3)
        assert sample.r_matrix.shape == (400, 2)
        assert sample.volunteer == "v1"
        assert sample.device == "pixel-8"
        assert not sample.dynamic


class TestGenerateDataset:
    def test_mini_dataset_counts(self, mini_dataset):
        # 6 volunteers x 4 devices x 1 gesture x 4 windows, minus any
        # windows that ran off a record.
        assert 6 * 4 * 2 <= len(mini_dataset) <= 6 * 4 * 4

    def test_covers_all_volunteers_and_devices(self, mini_dataset):
        volunteers = {s.volunteer for s in mini_dataset}
        devices = {s.device for s in mini_dataset}
        assert len(volunteers) == 6
        assert len(devices) == 4

    def test_stacking_helpers(self, mini_dataset):
        a = mini_dataset.a_matrices()
        r = mini_dataset.r_matrices()
        assert a.shape == (len(mini_dataset), 200, 3)
        assert r.shape == (len(mini_dataset), 400, 2)

    def test_split(self, mini_dataset):
        train, val = mini_dataset.split(0.75, rng=1)
        assert len(train) + len(val) == len(mini_dataset)
        assert len(train) > len(val)

    def test_split_validation(self, mini_dataset):
        with pytest.raises(ConfigurationError):
            mini_dataset.split(1.5)

    def test_dynamic_condition_present_with_enough_gestures(self):
        config = DatasetConfig(
            volunteers=default_volunteers()[:1],
            devices=default_mobile_devices()[:1],
            gestures_per_device=3,
            windows_per_gesture=2,
            gesture_active_s=4.0,
        )
        dataset = generate_dataset(config, rng=5)
        assert any(s.dynamic for s in dataset)
        assert any(not s.dynamic for s in dataset)

    def test_too_short_gesture_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_dataset(
                DatasetConfig(gesture_active_s=2.0), rng=1
            )

    def test_reproducible(self):
        config = DatasetConfig(
            volunteers=default_volunteers()[:1],
            devices=default_mobile_devices()[:1],
            gestures_per_device=1,
            windows_per_gesture=2,
            gesture_active_s=4.0,
        )
        d1 = generate_dataset(config, rng=9)
        d2 = generate_dataset(config, rng=9)
        np.testing.assert_array_equal(
            d1.a_matrices(), d2.a_matrices()
        )
