"""Tests for NIST tests, metrics, and table rendering."""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    mismatch_statistics,
    monobit_test,
    runs_test,
    shannon_entropy_bits,
    success_rate,
)
from repro.errors import ConfigurationError
from repro.utils.bits import BitSequence


class TestRunsTest:
    def test_random_sequence_passes(self):
        bits = BitSequence.random(51_200, np.random.default_rng(0))
        result = runs_test(bits)
        assert result.passed
        assert result.p_value > 0.01

    def test_constant_sequence_fails(self):
        result = runs_test(np.zeros(1000, dtype=np.uint8))
        assert not result.passed
        assert result.p_value == 0.0

    def test_alternating_sequence_fails(self):
        bits = np.tile([0, 1], 5000)
        result = runs_test(bits)
        # Far too many runs: statistically impossible for a fair coin.
        assert not result.passed

    def test_nist_reference_vector(self):
        # SP 800-22 section 2.3.8 example: eps = 110010010101 0110 ...
        # The documented 100-bit example: pi = 0.42, V = 52, p = 0.500798.
        eps = (
            "11001001000011111101101010100010001000010110100011"
            "00001000110100110001001100011001100010100010111000"
        )
        result = runs_test([int(c) for c in eps])
        assert result.p_value == pytest.approx(0.500798, abs=1e-4)

    def test_short_sequence_rejected(self):
        with pytest.raises(ConfigurationError):
            runs_test(np.zeros(50, dtype=np.uint8))


class TestBlockFrequency:
    def test_random_passes(self):
        from repro.analysis import block_frequency_test

        bits = BitSequence.random(20_000, np.random.default_rng(5))
        assert block_frequency_test(bits).passed

    def test_locally_biased_fails(self):
        from repro.analysis import block_frequency_test

        rng = np.random.default_rng(6)
        # Alternate strongly biased blocks: globally balanced, locally
        # far from 1/2 — exactly what this test exists to catch.
        blocks = []
        for i in range(100):
            p = 0.15 if i % 2 == 0 else 0.85
            blocks.append((rng.random(128) < p).astype(np.uint8))
        bits = np.concatenate(blocks)
        result = block_frequency_test(bits)
        assert not result.passed
        # The global monobit test is fooled.
        assert monobit_test(bits).passed

    def test_validation(self):
        from repro.analysis import block_frequency_test

        with pytest.raises(ConfigurationError):
            block_frequency_test(np.zeros(200, dtype=np.uint8),
                                 block_size=4)
        with pytest.raises(ConfigurationError):
            block_frequency_test(np.zeros(200, dtype=np.uint8),
                                 block_size=128)


class TestMonobit:
    def test_random_passes(self):
        bits = BitSequence.random(10_000, np.random.default_rng(1))
        assert monobit_test(bits).passed

    def test_biased_fails(self):
        rng = np.random.default_rng(2)
        biased = (rng.random(10_000) < 0.4).astype(np.uint8)
        assert not monobit_test(biased).passed


class TestMetrics:
    def test_success_rate(self):
        assert success_rate([True, True, False, True]) == 0.75

    def test_success_rate_empty(self):
        with pytest.raises(ConfigurationError):
            success_rate([])

    def test_mismatch_statistics_keys(self):
        stats = mismatch_statistics([0.01, 0.02, 0.05])
        assert set(stats) == {"mean", "median", "p90", "p99", "max"}
        assert stats["max"] == pytest.approx(0.05)

    def test_entropy_of_uniform_bits(self):
        bits = BitSequence.random(50_000, np.random.default_rng(3))
        assert shannon_entropy_bits(bits) > 0.999
        assert shannon_entropy_bits(bits, block=4) > 0.99

    def test_entropy_of_constant_bits(self):
        assert shannon_entropy_bits(np.zeros(1000, dtype=np.uint8)) == 0.0


class TestFormatTable:
    def test_renders_aligned(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["beta", 0.000012]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "alpha" in text and "1.20e-05" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
