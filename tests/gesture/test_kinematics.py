"""Tests for rotation utilities (the calibration pipeline's foundation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.gesture import (
    integrate_angular_velocity,
    rotation_from_rotvec,
    rotvec_from_rotation,
    skew,
    triad,
)

unit_angles = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
vec3 = st.tuples(unit_angles, unit_angles, unit_angles)


class TestSkew:
    def test_cross_product_equivalence(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([-1.0, 0.5, 2.0])
        np.testing.assert_allclose(skew(a) @ b, np.cross(a, b))

    def test_antisymmetry(self):
        m = skew(np.array([0.3, -0.2, 0.9]))
        np.testing.assert_allclose(m, -m.T)

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            skew(np.zeros(4))


class TestExpLog:
    def test_zero_rotation_is_identity(self):
        np.testing.assert_allclose(
            rotation_from_rotvec(np.zeros(3)), np.eye(3)
        )

    def test_quarter_turn_about_z(self):
        r = rotation_from_rotvec(np.array([0.0, 0.0, np.pi / 2]))
        np.testing.assert_allclose(
            r @ np.array([1.0, 0.0, 0.0]), [0.0, 1.0, 0.0], atol=1e-12
        )

    def test_rotation_is_orthonormal(self):
        r = rotation_from_rotvec(np.array([0.4, -1.2, 0.7]))
        np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)

    @given(vec3)
    @settings(max_examples=50)
    def test_log_inverts_exp(self, v):
        v = np.array(v)
        angle = np.linalg.norm(v)
        if angle > np.pi - 0.05:  # log is multivalued near pi
            return
        recovered = rotvec_from_rotation(rotation_from_rotvec(v))
        np.testing.assert_allclose(recovered, v, atol=1e-8)

    def test_log_near_pi(self):
        v = np.array([0.0, 0.0, np.pi - 1e-9])
        recovered = rotvec_from_rotation(rotation_from_rotvec(v))
        np.testing.assert_allclose(np.abs(recovered), np.abs(v), atol=1e-5)


class TestIntegration:
    def test_constant_rate_integrates_to_angle(self):
        r = np.eye(3)
        omega = np.array([0.0, 0.0, 1.0])  # 1 rad/s about z
        for _ in range(100):
            r = integrate_angular_velocity(r, omega, 0.01)
        expected = rotation_from_rotvec(np.array([0.0, 0.0, 1.0]))
        np.testing.assert_allclose(r, expected, atol=1e-9)

    def test_body_frame_convention(self):
        # omega is in the *body* frame: after a 90-degree yaw, rolling
        # about body-x must equal rolling about world-y.
        r = rotation_from_rotvec(np.array([0.0, 0.0, np.pi / 2]))
        stepped = integrate_angular_velocity(r, [np.pi / 2, 0, 0], 1.0)
        expected = r @ rotation_from_rotvec(np.array([np.pi / 2, 0, 0]))
        np.testing.assert_allclose(stepped, expected, atol=1e-12)


class TestTriad:
    def test_recovers_known_rotation(self):
        true_r = rotation_from_rotvec(np.array([0.2, -0.5, 1.1]))
        g_world = np.array([0.0, 0.0, 9.81])
        m_world = np.array([0.0, 22.0, -42.0])
        g_body = true_r.T @ g_world
        m_body = true_r.T @ m_world
        estimated = triad(g_body, m_body, g_world, m_world)
        np.testing.assert_allclose(estimated, true_r, atol=1e-10)

    def test_tolerates_measurement_noise(self):
        rng = np.random.default_rng(0)
        true_r = rotation_from_rotvec(np.array([-0.3, 0.8, 0.4]))
        g_world = np.array([0.0, 0.0, 9.81])
        m_world = np.array([0.0, 22.0, -42.0])
        g_body = true_r.T @ g_world + rng.normal(0, 0.05, 3)
        m_body = true_r.T @ m_world + rng.normal(0, 0.5, 3)
        estimated = triad(g_body, m_body, g_world, m_world)
        # Rotation error under a couple of degrees.
        err = rotvec_from_rotation(estimated.T @ true_r)
        assert np.linalg.norm(err) < np.deg2rad(3)

    def test_rejects_collinear_references(self):
        v = np.array([0.0, 0.0, 1.0])
        with pytest.raises(ShapeError):
            triad(v, 2 * v, v, 2 * v)
