"""Tests for the gesture trajectory model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gesture import GestureTrajectory, default_volunteers, sample_gesture


@pytest.fixture()
def trajectory():
    return sample_gesture(default_volunteers()[0], rng=11)


class TestTimeline:
    def test_total_includes_pause(self, trajectory):
        assert trajectory.total_s == pytest.approx(
            trajectory.pause_s + trajectory.active_s
        )

    def test_pause_is_nearly_still(self, trajectory):
        t = np.linspace(0.05, trajectory.pause_s - 0.1, 50)
        disp = trajectory.position(t)
        # Only the sub-millimetre tremor moves the hand before onset.
        assert np.abs(disp).max() < 1e-3

    def test_active_phase_moves_centimetres(self, trajectory):
        t = np.linspace(
            trajectory.pause_s + 0.5, trajectory.total_s - 0.1, 100
        )
        disp = trajectory.position(t)
        assert np.abs(disp).max() > 0.02


class TestKinematicConsistency:
    def test_velocity_is_position_derivative(self, trajectory):
        t = np.linspace(1.0, 2.5, 7)
        h = 1e-5
        numeric = (trajectory.position(t + h) - trajectory.position(t - h)) / (
            2 * h
        )
        np.testing.assert_allclose(
            trajectory.velocity(t), numeric, atol=1e-4
        )

    def test_acceleration_magnitude_plausible(self, trajectory):
        t = np.linspace(trajectory.pause_s + 0.3, trajectory.total_s - 0.2, 200)
        acc = trajectory.acceleration(t)
        # Hand gestures produce accelerations of a few m/s^2 up to ~50.
        assert 0.5 < np.abs(acc).max() < 100.0

    def test_orientation_is_rotation(self, trajectory):
        r = trajectory.orientation(1.7)
        np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-10)

    def test_angular_velocity_consistent_with_orientation(self, trajectory):
        # Integrate the reported omega and compare against orientation.
        t0, t1, n = 1.0, 1.5, 500
        dt = (t1 - t0) / n
        from repro.gesture import integrate_angular_velocity

        r = trajectory.orientation(t0)
        for i in range(n):
            omega = trajectory.angular_velocity_body(t0 + i * dt)
            r = integrate_angular_velocity(r, omega, dt)
        np.testing.assert_allclose(
            r, trajectory.orientation(t1), atol=5e-3
        )

    def test_vectorized_and_scalar_agree(self, trajectory):
        t = np.array([0.9, 1.4, 2.2])
        stacked = trajectory.orientations(t)
        for i, ti in enumerate(t):
            np.testing.assert_allclose(
                stacked[i], trajectory.orientation(ti)
            )


class TestRandomness:
    def test_distinct_seeds_give_distinct_gestures(self):
        profile = default_volunteers()[0]
        a = sample_gesture(profile, rng=1)
        b = sample_gesture(profile, rng=2)
        t = np.linspace(1.0, 3.0, 50)
        assert np.abs(a.position(t) - b.position(t)).max() > 0.01

    def test_same_seed_reproduces(self):
        profile = default_volunteers()[0]
        a = sample_gesture(profile, rng=5)
        b = sample_gesture(profile, rng=5)
        t = np.linspace(0.0, 3.0, 50)
        np.testing.assert_array_equal(a.position(t), b.position(t))

    def test_frequencies_in_profile_band(self):
        profile = default_volunteers()[1]
        traj = sample_gesture(profile, rng=3)
        low, high = profile.freq_band_hz
        assert np.all(traj.pos_freq >= low * 0.999)
        assert np.all(traj.pos_freq <= high * 1.001)


class TestValidation:
    def test_inconsistent_components_raise(self):
        with pytest.raises(ConfigurationError):
            GestureTrajectory(
                position_amplitudes=np.ones((2, 3)),
                position_frequencies=np.ones(3),  # mismatch
                position_phases=np.zeros((2, 3)),
                rotation_amplitudes=np.ones((1, 3)),
                rotation_frequencies=np.ones(1),
                rotation_phases=np.zeros((1, 3)),
            )

    def test_component_introspection(self):
        traj = sample_gesture(default_volunteers()[0], rng=2)
        comps = traj.position_components()
        assert len(comps) == traj.pos_freq.size
        assert comps[0][0].frequency_hz == pytest.approx(traj.pos_freq[0])
