"""Tests for the gesture-mimicry model (the SVI-E.1 attack substrate)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gesture import (
    MimicryModel,
    default_volunteers,
    mimic_trajectory,
    sample_gesture,
)


@pytest.fixture()
def victim_trajectory():
    return sample_gesture(default_volunteers()[0], rng=21)


@pytest.fixture()
def imitator():
    return default_volunteers()[1]


class TestMimicTrajectory:
    def test_same_timeline(self, victim_trajectory, imitator):
        mimic = mimic_trajectory(victim_trajectory, imitator, rng=1)
        assert mimic.pause_s == victim_trajectory.pause_s
        assert mimic.active_s == victim_trajectory.active_s

    def test_coarsely_similar(self, victim_trajectory, imitator):
        """The imitation tracks the victim's slow components: correlation
        is clearly above chance..."""
        mimic = mimic_trajectory(
            victim_trajectory, imitator,
            model=MimicryModel(reaction_delay_s=0.0, delay_jitter_s=0.01,
                               amplitude_error=0.05,
                               phase_error_per_hz=0.05,
                               style_leakage=0.05),
            rng=2,
        )
        t = np.linspace(1.0, 3.0, 400)
        a = victim_trajectory.position(t)[:, 0]
        b = mimic.position(t)[:, 0]
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.5

    def test_not_exact(self, victim_trajectory, imitator):
        """... but never an exact copy, even for an excellent imitator."""
        mimic = mimic_trajectory(victim_trajectory, imitator, rng=3)
        t = np.linspace(1.0, 3.0, 400)
        diff = victim_trajectory.position(t) - mimic.position(t)
        assert np.abs(diff).max() > 0.01

    def test_high_frequency_components_replaced(
        self, victim_trajectory, imitator
    ):
        model = MimicryModel(tracking_bandwidth_hz=1.0)
        mimic = mimic_trajectory(
            victim_trajectory, imitator, model=model, rng=4
        )
        victim_fast = victim_trajectory.pos_freq[
            victim_trajectory.pos_freq > 1.0
        ]
        # None of the victim's fast components survive verbatim in the
        # tracked part of the mimic (they were re-drawn).
        kept = mimic.pos_freq[: victim_trajectory.pos_freq.size]
        for f in victim_fast:
            tracked_slot = np.where(victim_trajectory.pos_freq == f)[0][0]
            # The slot was replaced by one of the imitator's frequencies;
            # equality would be a coincidence of measure zero.
            assert kept[tracked_slot] != pytest.approx(f)

    def test_rotation_is_imitators_own(self, victim_trajectory, imitator):
        mimic = mimic_trajectory(victim_trajectory, imitator, rng=5)
        assert mimic.rot_freq.shape != victim_trajectory.rot_freq.shape or not (
            np.allclose(mimic.rot_freq, victim_trajectory.rot_freq)
        )

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            MimicryModel(tracking_bandwidth_hz=0.0)
        with pytest.raises(ConfigurationError):
            MimicryModel(style_leakage=1.5)

    def test_reproducible(self, victim_trajectory, imitator):
        a = mimic_trajectory(victim_trajectory, imitator, rng=9)
        b = mimic_trajectory(victim_trajectory, imitator, rng=9)
        t = np.linspace(0.0, 3.0, 64)
        np.testing.assert_array_equal(a.position(t), b.position(t))


class TestVolunteerProfiles:
    def test_six_defaults(self):
        profiles = default_volunteers()
        assert len(profiles) == 6
        assert len({p.name for p in profiles}) == 6

    def test_profile_validation(self):
        from repro.gesture import VolunteerProfile

        with pytest.raises(ConfigurationError):
            VolunteerProfile("bad", freq_band_hz=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            VolunteerProfile("bad", n_components=0)
        with pytest.raises(ConfigurationError):
            VolunteerProfile("bad", amplitude_m=-0.1)
