"""Unit tests for session state management."""

import pytest

from repro.errors import ServiceError
from repro.service.metrics import EventLog, MetricsRegistry
from repro.service.sessions import (
    AccessRequest,
    RejectionReason,
    SessionManager,
    SessionState,
)


@pytest.fixture()
def manager():
    return SessionManager(MetricsRegistry(), EventLog())


def make_request(seed=0, session_id=None):
    if session_id is not None:
        return AccessRequest(rng_seed=seed, session_id=session_id)
    return AccessRequest(rng_seed=seed)


class TestTransitions:
    def test_happy_path_and_ticket_completion(self, manager):
        ticket = manager.open(make_request())
        record = ticket._record
        assert record.state is SessionState.QUEUED
        assert not ticket.done()
        for state in (
            SessionState.ENCODING,
            SessionState.AGREEING,
            SessionState.ESTABLISHED,
        ):
            manager.transition(record, state)
        assert ticket.done()
        assert record.success
        assert manager.metrics.counter("service.established").value == 1

    def test_illegal_transition_raises(self, manager):
        record = manager.open(make_request())._record
        with pytest.raises(ServiceError, match="illegal transition"):
            manager.transition(record, SessionState.AGREEING)

    def test_retry_loops_are_legal(self, manager):
        record = manager.open(make_request())._record
        manager.transition(record, SessionState.ENCODING)
        manager.transition(record, SessionState.ENCODING)  # acquire retry
        manager.transition(record, SessionState.AGREEING)
        manager.transition(record, SessionState.ENCODING)  # agreement retry
        assert record.state is SessionState.ENCODING

    def test_transitions_emit_events(self, manager):
        record = manager.open(make_request())._record
        manager.transition(record, SessionState.ENCODING, attempt=1)
        events = manager.events.query(
            kind="encoding", session_id=record.session_id
        )
        assert len(events) == 1
        assert events[0].fields["attempt"] == 1

    def test_result_blocks_until_terminal(self, manager):
        ticket = manager.open(make_request())
        with pytest.raises(ServiceError, match="not finished"):
            ticket.result(timeout=0.01)


class TestShedAndAbort:
    def test_shed_is_immediately_terminal(self, manager):
        rejection = RejectionReason(
            code="queue_full", detail="full", queue_depth=4, queue_capacity=4
        )
        ticket = manager.shed(make_request(), rejection)
        record = ticket.result(timeout=1.0)
        assert record.state is SessionState.SHED
        assert record.rejection.code == "queue_full"
        assert record.rejection.queue_depth == 4
        assert manager.metrics.counter("service.shed").value == 1
        events = manager.events.query(kind="shed")
        assert events and events[0].fields["code"] == "queue_full"

    def test_abort_from_any_state(self, manager):
        ticket = manager.open(make_request())
        record = ticket._record  # still QUEUED: FAILED is not legal here
        manager.abort(record, "internal: worker crashed")
        assert record.state is SessionState.FAILED
        assert ticket.result(timeout=1.0).failure_reason.startswith(
            "internal:"
        )

    def test_abort_ignores_terminal_sessions(self, manager):
        rejection = RejectionReason("queue_full", "full", 1, 1)
        record = manager.shed(make_request(), rejection)._record
        manager.abort(record, "should not apply")
        assert record.state is SessionState.SHED


class TestRegistry:
    def test_duplicate_session_id_rejected(self, manager):
        manager.open(make_request(session_id="dup"))
        with pytest.raises(ServiceError, match="duplicate"):
            manager.open(make_request(session_id="dup"))

    def test_get_and_count(self, manager):
        record = manager.open(make_request())._record
        assert manager.get(record.session_id) is record
        assert manager.count(SessionState.QUEUED) == 1
        with pytest.raises(ServiceError, match="unknown session"):
            manager.get("nope")

    def test_session_ids_are_unique(self):
        ids = {make_request().session_id for _ in range(100)}
        assert len(ids) == 100
