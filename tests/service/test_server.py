"""Service-level tests for the concurrent access-control server.

These use a small untrained bundle (the server does not care about key
quality) plus injected acquisition/agreement functions, so every path —
establishment, tau-deadline timeout, bounded retries, wall-clock budget,
load shedding — is deterministic and fast.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.errors import ServiceError, SimulationError
from repro.protocol import SimulatedTransport
from repro.protocol.agreement import KeyAgreementOutcome
from repro.service import (
    AccessRequest,
    ServiceConfig,
    SessionState,
    WaveKeyAccessServer,
)
from repro.utils.bits import BitSequence


@pytest.fixture(scope="module")
def tiny_bundle():
    return WaveKeyModelBundle(
        imu_encoder=build_imu_encoder(6, rng=0),
        rf_encoder=build_rf_encoder(6, rng=1),
        decoder=build_decoder(6, rng=2),
        n_bins=8,
        eta=0.2,
    )


def fixed_acquire(request, rng):
    """Deterministic sensor windows with valid shapes/ranges."""
    gen = np.random.default_rng(request.rng_seed)
    a_matrix = gen.normal(size=(200, 3))
    r_matrix = np.stack(
        [
            gen.uniform(-np.pi, np.pi, 400),
            np.abs(gen.normal(size=400)) + 0.5,
        ],
        axis=1,
    )
    return a_matrix, r_matrix


def ok_outcome(clock):
    key = BitSequence.random(128, np.random.default_rng(1))
    return KeyAgreementOutcome(
        success=True,
        mobile_key=key,
        server_key=key,
        elapsed_s=clock.now,
        failure_reason=None,
        seed_mismatch_bits=0,
    )


def failed_outcome(clock, reason="agreement: confirmation HMACs differ"):
    return KeyAgreementOutcome(
        success=False,
        mobile_key=None,
        server_key=None,
        elapsed_s=clock.now,
        failure_reason=reason,
        seed_mismatch_bits=9,
    )


def make_server(tiny_bundle, config=None, **kwargs):
    kwargs.setdefault("acquire_fn", fixed_acquire)
    return WaveKeyAccessServer(
        tiny_bundle, config or ServiceConfig(workers=2), **kwargs
    )


class TestEstablishment:
    def test_successful_session(self, tiny_bundle):
        server = make_server(
            tiny_bundle,
            agreement_fn=lambda *a, **kw: ok_outcome(kw["clock"]),
        )
        with server:
            record = server.establish(AccessRequest(rng_seed=1), timeout=30)
        assert record.state is SessionState.ESTABLISHED
        assert record.success
        assert record.key is not None and len(record.key) == 128
        assert record.attempts == 1
        for stage in ("queue_wait_s", "encode_s", "agree_s", "total_s"):
            assert record.timings[stage] >= 0.0
        kinds = [
            e.kind for e in server.events.query(session_id=record.session_id)
        ]
        assert kinds == [
            "admitted", "encoding", "encoded", "agreeing", "established",
        ]
        counters = server.metrics.snapshot()["counters"]
        assert counters["service.admitted"] == 1
        assert counters["service.established"] == 1
        assert server.metrics.histogram("service.total_s").count == 1

    def test_sessions_share_encoder_batches(self, tiny_bundle):
        gate = threading.Event()

        def gated_agreement(*args, **kwargs):
            gate.wait(10.0)
            return ok_outcome(kwargs["clock"])

        config = ServiceConfig(
            workers=4, max_batch_size=4, max_batch_wait_s=0.05
        )
        with make_server(
            tiny_bundle, config, agreement_fn=gated_agreement
        ) as server:
            tickets = [
                server.submit(AccessRequest(rng_seed=i)) for i in range(4)
            ]
            gate.set()
            records = [t.result(timeout=30) for t in tickets]
        assert all(r.success for r in records)
        counters = server.metrics.snapshot()["counters"]
        # 4 windows went through fewer than 4 imu batches: coalescing
        # actually happened (the 50 ms window gathers all four workers).
        assert counters["imu_en.items"] == 4
        assert counters["imu_en.batches"] < 4


class TestTauDeadline:
    def test_slow_transport_times_out_the_protocol(self, tiny_bundle):
        # 1 s per message: M_A arrives at ~3 s >> the 2.12 s deadline.
        server = make_server(
            tiny_bundle,
            ServiceConfig(workers=1),
            transport_factory=lambda: SimulatedTransport(base_latency_s=1.0),
        )
        with server:
            record = server.establish(AccessRequest(rng_seed=2), timeout=60)
        assert record.state is SessionState.TIMED_OUT
        assert record.failure_reason.startswith("deadline:")
        assert record.attempts == 1  # deadline misses are not retried
        events = server.events.query(
            kind="timed_out", session_id=record.session_id
        )
        assert events and events[0].fields["code"] == "tau_deadline"
        counters = server.metrics.snapshot()["counters"]
        assert counters["service.timed_out"] == 1
        assert counters.get("service.retries", 0) == 0

    def test_retry_on_timeout_can_be_enabled(self, tiny_bundle):
        calls = []

        def flaky(*args, **kwargs):
            calls.append(1)
            if len(calls) == 1:
                return failed_outcome(
                    kwargs["clock"], reason="deadline: M_A late"
                )
            return ok_outcome(kwargs["clock"])

        config = ServiceConfig(workers=1, retry_on_timeout=True)
        with make_server(tiny_bundle, config, agreement_fn=flaky) as server:
            record = server.establish(AccessRequest(rng_seed=3), timeout=30)
        assert record.success
        assert record.attempts == 2


class TestRetries:
    def test_fails_then_succeeds(self, tiny_bundle):
        calls = []

        def flaky(*args, **kwargs):
            calls.append(1)
            if len(calls) < 3:
                return failed_outcome(kwargs["clock"])
            return ok_outcome(kwargs["clock"])

        config = ServiceConfig(workers=1, max_attempts=3)
        with make_server(tiny_bundle, config, agreement_fn=flaky) as server:
            record = server.establish(AccessRequest(rng_seed=4), timeout=30)
        assert record.success
        assert record.attempts == 3
        counters = server.metrics.snapshot()["counters"]
        assert counters["service.retries"] == 2
        assert counters["service.attempts"] == 3
        retries = server.events.query(
            kind="retry", session_id=record.session_id
        )
        assert [e.fields["attempt"] for e in retries] == [2, 3]

    def test_attempts_exhausted_reports_failure(self, tiny_bundle):
        config = ServiceConfig(workers=1, max_attempts=2)
        server = make_server(
            tiny_bundle,
            config,
            agreement_fn=lambda *a, **kw: failed_outcome(kw["clock"]),
        )
        with server:
            record = server.establish(AccessRequest(rng_seed=5), timeout=30)
        assert record.state is SessionState.FAILED
        assert record.attempts == 2
        assert record.failure_reason.startswith("agreement:")
        assert server.metrics.snapshot()["counters"]["service.failed"] == 1

    def test_acquisition_errors_are_retried(self, tiny_bundle):
        calls = []

        def flaky_acquire(request, rng):
            calls.append(1)
            if len(calls) == 1:
                raise SimulationError("tag read glitch")
            return fixed_acquire(request, rng)

        server = make_server(
            tiny_bundle,
            ServiceConfig(workers=1),
            acquire_fn=flaky_acquire,
            agreement_fn=lambda *a, **kw: ok_outcome(kw["clock"]),
        )
        with server:
            record = server.establish(AccessRequest(rng_seed=6), timeout=30)
        assert record.success
        assert record.attempts == 2


class TestLoadShedding:
    def test_overload_sheds_with_structured_reason(self, tiny_bundle):
        gate = threading.Event()
        entered = threading.Event()

        def gated_agreement(*args, **kwargs):
            entered.set()
            gate.wait(10.0)
            return ok_outcome(kwargs["clock"])

        config = ServiceConfig(
            workers=1, queue_capacity=2, max_batch_size=1
        )
        with make_server(
            tiny_bundle, config, agreement_fn=gated_agreement
        ) as server:
            first = server.submit(AccessRequest(rng_seed=10))
            assert entered.wait(10.0)  # worker is now pinned in agreement
            queued = [
                server.submit(AccessRequest(rng_seed=11 + i))
                for i in range(2)
            ]
            shed = server.submit(AccessRequest(rng_seed=13))
            shed_record = shed.result(timeout=5.0)
            assert shed_record.state is SessionState.SHED
            assert shed_record.rejection.code == "queue_full"
            assert shed_record.rejection.queue_depth == 2
            assert shed_record.rejection.queue_capacity == 2
            gate.set()
            assert first.result(timeout=30).success
            assert all(t.result(timeout=30).success for t in queued)
        counters = server.metrics.snapshot()["counters"]
        assert counters["service.shed"] == 1
        assert counters["service.established"] == 3
        shed_events = server.events.query(kind="shed")
        assert shed_events and shed_events[0].fields["code"] == "queue_full"


class TestWallClockDeadline:
    def test_slow_acquisition_exhausts_session_budget(self, tiny_bundle):
        def slow_acquire(request, rng):
            time.sleep(0.1)
            return fixed_acquire(request, rng)

        config = ServiceConfig(workers=1, session_deadline_s=0.05)
        agreement_calls = []
        server = make_server(
            tiny_bundle,
            config,
            acquire_fn=slow_acquire,
            agreement_fn=lambda *a, **kw: agreement_calls.append(1),
        )
        with server:
            record = server.establish(AccessRequest(rng_seed=20), timeout=30)
        assert record.state is SessionState.TIMED_OUT
        assert record.failure_reason.startswith("session_deadline:")
        assert not agreement_calls
        events = server.events.query(kind="timed_out")
        assert events[0].fields["code"] == "session_deadline"


class TestLifecycle:
    def test_submit_requires_running_server(self, tiny_bundle):
        server = make_server(tiny_bundle)
        with pytest.raises(ServiceError, match="not running"):
            server.submit(AccessRequest(rng_seed=1))
        server.start()
        server.stop()
        with pytest.raises(ServiceError, match="not running"):
            server.submit(AccessRequest(rng_seed=1))

    def test_ot_pool_lifecycle_follows_server(self, tiny_bundle):
        server = make_server(
            tiny_bundle,
            ServiceConfig(workers=1, ot_pool_depth=4),
            agreement_fn=lambda *a, **kw: ok_outcome(kw["clock"]),
        )
        assert server.ot_pool is not None
        assert not server.ot_pool._running
        with server:
            assert server.ot_pool._running
            deadline = time.monotonic() + 5.0
            group = server.agreement_config.group
            while server.ot_pool.depths(group) != (4, 4):
                if time.monotonic() > deadline:
                    pytest.fail("pool never refilled to depth")
                time.sleep(0.01)
        assert not server.ot_pool._running

    def test_ot_pool_disabled_by_config(self, tiny_bundle):
        server = make_server(
            tiny_bundle, ServiceConfig(workers=1, ot_pool_depth=0)
        )
        assert server.ot_pool is None

    def test_pool_kwarg_gated_on_capability_marker(self, tiny_bundle):
        """Injected agreement functions that never heard of the pool
        keep their exact signatures; opted-in functions receive it."""
        seen = {}

        def plain_fn(s_m, s_r, *, config, transport, clock, rng):
            seen["plain"] = True
            return ok_outcome(clock)

        def pooled_fn(s_m, s_r, *, config, transport, clock, rng, pool):
            seen["pool"] = pool
            return ok_outcome(clock)

        pooled_fn.accepts_ot_pool = True

        server = make_server(
            tiny_bundle,
            ServiceConfig(workers=1, ot_pool_depth=4),
            agreement_fn=plain_fn,
        )
        with server:
            assert server.establish(
                AccessRequest(rng_seed=1), timeout=30
            ).success
            server._agreement_fn = pooled_fn
            assert server.establish(
                AccessRequest(rng_seed=2), timeout=30
            ).success
        assert seen["plain"] is True
        assert seen["pool"] is server.ot_pool

    def test_internal_errors_fail_the_session_not_the_worker(
        self, tiny_bundle
    ):
        def broken_acquire(request, rng):
            raise RuntimeError("unexpected")

        server = make_server(
            tiny_bundle, ServiceConfig(workers=1), acquire_fn=broken_acquire
        )
        with server:
            record = server.establish(AccessRequest(rng_seed=1), timeout=30)
            assert record.state is SessionState.FAILED
            assert record.failure_reason.startswith("internal:")
            # The worker survived; a healthy session still completes.
            server._acquire_fn = fixed_acquire
            server._agreement_fn = lambda *a, **kw: ok_outcome(kw["clock"])
            record2 = server.establish(AccessRequest(rng_seed=2), timeout=30)
        assert record2.success
