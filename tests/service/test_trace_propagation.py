"""Trace-context propagation across the server's thread boundaries.

The server's worker threads and the micro-batcher's scheduler thread
all contribute spans to a session's trace; these tests pin the
invariant that every session ends up with ONE complete span tree —
session root with enqueue/acquire/encode/ot children, per-item encoder
spans under encode — even when the encoder forward actually ran on the
batcher thread on behalf of several sessions at once.
"""

import threading

import numpy as np
import pytest

from repro.crypto import generate_dh_group
from repro.obs import Tracer
from repro.protocol import KeyAgreementConfig, run_key_agreement
from repro.service import AccessRequest, ServiceConfig, WaveKeyAccessServer
from repro.utils.bits import BitSequence

from tests.service.test_server import (  # noqa: F401  (fixture re-use)
    fixed_acquire,
    ok_outcome,
    tiny_bundle,
)


def spans_by_trace(tracer):
    grouped = {}
    for span in tracer.finished_spans():
        grouped.setdefault(span.trace_id, []).append(span)
    return grouped


class TestSessionSpanTrees:
    def test_batched_sessions_each_get_one_complete_tree(self, tiny_bundle):
        tracer = Tracer()
        gate = threading.Event()

        def gated_agreement(*args, **kwargs):
            gate.wait(10.0)
            return ok_outcome(kwargs["clock"])

        config = ServiceConfig(
            workers=4, max_batch_size=4, max_batch_wait_s=0.05
        )
        server = WaveKeyAccessServer(
            tiny_bundle, config,
            acquire_fn=fixed_acquire,
            agreement_fn=gated_agreement,
            tracer=tracer,
        )
        with server:
            tickets = [
                server.submit(AccessRequest(rng_seed=i)) for i in range(4)
            ]
            gate.set()
            records = [t.result(timeout=30) for t in tickets]
        assert all(r.success for r in records)

        traces = spans_by_trace(tracer)
        roots = {
            trace_id: [s for s in spans if s.parent_id is None]
            for trace_id, spans in traces.items()
        }
        session_roots = {
            trace_id: rs[0]
            for trace_id, rs in roots.items()
            if rs and rs[0].name == "session"
        }
        # one trace per session, each with exactly one root
        assert len(session_roots) == 4
        assert {
            r.attributes["session_id"] for r in session_roots.values()
        } == {rec.session_id for rec in records}

        coalesced = False
        for trace_id, root in session_roots.items():
            spans = traces[trace_id]
            children = [s for s in spans if s.parent_id == root.span_id]
            names = [s.name for s in children]
            # flat stage chain under the session root
            for stage in ("enqueue", "acquire", "encode", "ot"):
                assert stage in names, (
                    f"{root.attributes['session_id']}: missing {stage} "
                    f"in {names}"
                )
            assert root.status == "ok"
            assert root.attributes["state"] == "established"
            # the encoder work that ran on the batcher thread must have
            # landed back under THIS session's encode span
            encode = next(s for s in children if s.name == "encode")
            encoder_spans = [
                s for s in spans if s.parent_id == encode.span_id
            ]
            encoder_names = {s.name for s in encoder_spans}
            assert "imu_en.infer" in encoder_names
            assert "rf_en.infer" in encoder_names
            if any(
                s.attributes.get("batch_size", 1) > 1 for s in encoder_spans
            ):
                coalesced = True
        # with a 50 ms gather window and 4 workers, at least one batch
        # actually coalesced — the cross-thread case this test is about
        assert coalesced

    def test_tracing_off_leaves_no_spans_and_no_trace(self, tiny_bundle):
        server = WaveKeyAccessServer(
            tiny_bundle, ServiceConfig(workers=2),
            acquire_fn=fixed_acquire,
            agreement_fn=lambda *a, **kw: ok_outcome(kw["clock"]),
        )
        with server:
            record = server.establish(AccessRequest(rng_seed=1), timeout=30)
        assert record.success
        assert record.trace is None


class TestProtocolSpanNesting:
    def test_agreement_nests_under_active_caller_span(self):
        tracer = Tracer()
        rng = np.random.default_rng(3)
        seed = BitSequence.random(64, rng)
        # Small DH group + generous tau: this test pins span nesting,
        # not timing, and must not flake when the wall-clocked OT
        # crafting runs on a loaded machine.
        config = KeyAgreementConfig(
            key_length_bits=32, eta=0.25, tau_s=30.0,
            group=generate_dh_group(96, rng=99),
        )
        with tracer.span("ot") as ot_span:
            outcome = run_key_agreement(
                seed, BitSequence(seed.array), config=config, rng=rng
            )
        assert outcome.success
        spans = {s.name: s for s in tracer.finished_spans()}
        agreement = spans["agreement"]
        assert agreement.parent_id == ot_span.span_id
        assert agreement.trace_id == ot_span.trace_id
        # the protocol's own stages hang off the agreement span
        assert spans["ot.announce"].parent_id == agreement.span_id
        assert spans["reconcile"].parent_id == agreement.span_id
        assert (
            spans["reconcile.confirm"].parent_id == spans["reconcile"].span_id
        )
