"""Unit tests for the micro-batching inference scheduler."""

import threading
import time

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.service.batching import MicroBatcher
from repro.service.metrics import MetricsRegistry


def double_all(items):
    return [item * 2 for item in items]


class TestLaunchPolicy:
    def test_full_batch_fires_without_waiting(self):
        metrics = MetricsRegistry()
        with MicroBatcher(
            "enc", double_all, max_batch_size=4, max_wait_s=30.0,
            metrics=metrics,
        ) as batcher:
            futures = [batcher.submit(i) for i in range(4)]
            results = [f.result(timeout=5.0) for f in futures]
        assert results == [0, 2, 4, 6]
        assert all(f.batch_size == 4 for f in futures)
        assert metrics.counter("enc.batches").value == 1
        assert metrics.counter("enc.items").value == 4

    def test_max_wait_flushes_partial_batch(self):
        with MicroBatcher(
            "enc", double_all, max_batch_size=100, max_wait_s=0.01
        ) as batcher:
            future = batcher.submit(21)
            assert future.result(timeout=5.0) == 42
            assert future.batch_size == 1

    def test_batch_size_one_is_per_request(self):
        metrics = MetricsRegistry()
        with MicroBatcher(
            "enc", double_all, max_batch_size=1, max_wait_s=30.0,
            metrics=metrics,
        ) as batcher:
            futures = [batcher.submit(i) for i in range(3)]
            for f in futures:
                f.result(timeout=5.0)
        assert all(f.batch_size == 1 for f in futures)
        assert metrics.counter("enc.batches").value == 3

    def test_coalesces_under_slow_batch_fn(self):
        gate = threading.Event()
        calls = []

        def gated(items):
            calls.append(len(items))
            gate.wait(5.0)
            return list(items)

        with MicroBatcher(
            "enc", gated, max_batch_size=8, max_wait_s=0.0
        ) as batcher:
            first = batcher.submit(0)
            # While the first (singleton) batch blocks in batch_fn, the
            # rest pile up and must launch together afterwards.
            while not calls:
                time.sleep(0.001)
            rest = [batcher.submit(i) for i in range(1, 5)]
            gate.set()
            first.result(timeout=5.0)
            for f in rest:
                f.result(timeout=5.0)
        assert calls[0] == 1
        assert all(f.batch_size == 4 for f in rest)

    def test_future_records_wait_and_compute(self):
        with MicroBatcher(
            "enc", double_all, max_batch_size=1, max_wait_s=0.0
        ) as batcher:
            future = batcher.submit(1)
            future.result(timeout=5.0)
        assert future.queue_wait_s >= 0.0
        assert future.compute_s >= 0.0


class TestFailurePaths:
    def test_batch_fn_exception_reaches_every_future(self):
        def boom(items):
            raise ValueError("model exploded")

        with MicroBatcher(
            "enc", boom, max_batch_size=2, max_wait_s=30.0
        ) as batcher:
            futures = [batcher.submit(i) for i in range(2)]
            for f in futures:
                with pytest.raises(ValueError, match="model exploded"):
                    f.result(timeout=5.0)

    def test_length_mismatch_is_a_service_error(self):
        with MicroBatcher(
            "enc", lambda items: [1], max_batch_size=2, max_wait_s=30.0
        ) as batcher:
            futures = [batcher.submit(i) for i in range(2)]
            for f in futures:
                with pytest.raises(ServiceError, match="returned 1 results"):
                    f.result(timeout=5.0)

    def test_result_timeout(self):
        gate = threading.Event()

        def gated(items):
            gate.wait(5.0)
            return list(items)

        with MicroBatcher(
            "enc", gated, max_batch_size=1, max_wait_s=0.0
        ) as batcher:
            future = batcher.submit(1)
            with pytest.raises(ServiceError, match="not ready"):
                future.result(timeout=0.01)
            gate.set()
            assert future.result(timeout=5.0) == 1


class TestLifecycle:
    def test_submit_before_start_raises(self):
        batcher = MicroBatcher("enc", double_all)
        with pytest.raises(ServiceError, match="not running"):
            batcher.submit(1)

    def test_double_start_raises(self):
        batcher = MicroBatcher("enc", double_all).start()
        try:
            with pytest.raises(ServiceError, match="already started"):
                batcher.start()
        finally:
            batcher.stop()

    def test_stop_drains_pending_work(self):
        with MicroBatcher(
            "enc", double_all, max_batch_size=100, max_wait_s=30.0
        ) as batcher:
            future = batcher.submit(5)
        # Exiting the context stops the batcher; the pending item must
        # still have been served (graceful drain), not dropped.
        assert future.result(timeout=5.0) == 10

    def test_stop_is_idempotent(self):
        batcher = MicroBatcher("enc", double_all).start()
        batcher.stop()
        batcher.stop()

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher("enc", double_all, max_batch_size=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher("enc", double_all, max_wait_s=-1.0)
