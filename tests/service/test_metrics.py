"""Unit tests for the service observability primitives."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.service.metrics import (
    Counter,
    EventLog,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigurationError):
            Counter("x").inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter("x")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_mean_count_total(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 3.5):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.mean == pytest.approx(2.0)

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("h", bounds=(0.01, 0.1, 1.0))
        for _ in range(99):
            hist.observe(0.005)
        hist.observe(0.5)
        # p50 falls at rank 50 of 99 observations inside [0, 0.01).
        assert hist.percentile(0.5) == pytest.approx(50 / 99 * 0.01)
        assert hist.percentile(0.99) == pytest.approx(0.01)
        # The top percentile lands in [0.1, 1.0); interpolation is
        # clamped to the largest observed value.
        assert hist.percentile(1.0) == pytest.approx(0.5)

    def test_percentile_pins_uniform_distribution(self):
        # Regression: uniform 1..100 against decade bounds must report
        # p50/p99 near the true order statistics, not bucket edges.
        hist = Histogram(
            "h", bounds=tuple(float(b) for b in range(10, 101, 10))
        )
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(0.5) == pytest.approx(50.0)
        assert hist.percentile(0.99) == pytest.approx(99.0)

    def test_percentile_overflow_reports_true_max(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        hist.observe(42.0)
        assert hist.percentile(0.99) == pytest.approx(42.0)

    def test_overflow_bucket_and_snapshot(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        hist.observe(42.0)
        snap = hist.snapshot()
        assert snap["overflow"] == 1
        assert snap["buckets"][1.0] == 1
        assert snap["min"] == 0.5
        assert snap["max"] == 42.0

    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.mean == 0.0
        assert hist.percentile(0.5) == 0.0

    def test_rejects_bad_bounds_and_quantiles(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h").percentile(0.0)


class TestEventLog:
    def test_emit_and_query_by_kind_and_session(self):
        log = EventLog()
        log.emit("admitted", session_id="s1")
        log.emit("admitted", session_id="s2")
        log.emit("established", session_id="s1", elapsed_s=2.0)
        assert len(log) == 3
        assert [e.session_id for e in log.query(kind="admitted")] == [
            "s1", "s2",
        ]
        s1 = log.query(session_id="s1")
        assert [e.kind for e in s1] == ["admitted", "established"]
        assert s1[1].fields["elapsed_s"] == 2.0

    def test_sequence_numbers_are_ordered(self):
        log = EventLog()
        for i in range(5):
            log.emit("tick", n=i)
        seqs = [e.seq for e in log.query()]
        assert seqs == sorted(seqs)

    def test_capacity_drops_and_counts(self):
        log = EventLog(capacity=2)
        log.emit("a")
        log.emit("b")
        log.emit("c")
        assert len(log) == 2
        assert log.dropped == 1


class TestDeprecatedShim:
    def test_service_metrics_aliases_the_obs_package(self):
        import repro.obs.events
        import repro.obs.metrics
        import repro.service.metrics as shim

        assert shim.Counter is repro.obs.metrics.Counter
        assert shim.Histogram is repro.obs.metrics.Histogram
        assert shim.MetricsRegistry is repro.obs.metrics.MetricsRegistry
        assert shim.EventLog is repro.obs.events.EventLog

    def test_import_emits_deprecation_warning(self):
        # The warning fires at import time; drop the cached module so
        # a fresh import re-executes the shim body.
        import importlib
        import sys

        sys.modules.pop("repro.service.metrics", None)
        try:
            with pytest.warns(
                DeprecationWarning, match="import from repro.obs"
            ):
                importlib.import_module("repro.service.metrics")
        finally:
            # Leave a cached module behind for any later importer.
            importlib.import_module("repro.service.metrics")


class TestMetricsRegistry:
    def test_counter_and_histogram_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.histogram("latency").observe(0.05)
        snap = registry.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["histograms"]["latency"]["count"] == 1
