"""Telemetry pipeline tests: buffering, stitching, rendering.

Exercises :mod:`repro.obs.collect` end to end in-process: the
per-service :class:`TelemetryBuffer` ring (tracer/event-log draining,
capacity bounds, drain-exactly-once), multi-document :func:`stitch`
de-duplication, the cross-hop latency breakdown, and the ASCII tree
renderer that joins a client/gateway/backend trace back together.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs.collect import (
    TELEMETRY_SCHEMA,
    TelemetryBuffer,
    event_to_dict,
    filter_trace,
    format_stitched,
    hop_breakdown,
    stitch,
    trace_ids,
)
from repro.obs.events import EventLog
from repro.obs.tracing import Span, Tracer


def make_span(
    span_id,
    name="op",
    trace_id="t-1",
    parent_id=None,
    service="",
    start_s=0.0,
    duration_s=0.010,
    status="ok",
    **attrs,
):
    """A finished span dict shaped like ``Span.to_dict()``."""
    end_s = None if duration_s is None else start_s + duration_s
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_s": start_s,
        "end_s": end_s,
        "duration_s": duration_s,
        "status": status,
        "attributes": dict(attrs),
        "service": service,
    }


def three_service_trace():
    """The canonical stitched shape: client root, gateway route+splice,
    backend session subtree — one trace, three services, monotonic
    clocks that do NOT agree across processes."""
    return [
        make_span("s-c1", name="net.establish", service="client",
                  start_s=100.0, duration_s=0.340),
        make_span("s-c2", name="net.hello", service="client",
                  parent_id="s-c1", start_s=100.01, duration_s=0.335),
        make_span("s-g1", name="cluster.route", service="gateway",
                  parent_id="s-c2", start_s=5.0, duration_s=0.0002),
        make_span("s-g2", name="cluster.splice", service="gateway",
                  parent_id="s-c2", start_s=5.0005, duration_s=0.337),
        make_span("s-b1", name="session", service="backend:1",
                  parent_id="s-c2", start_s=900.0, duration_s=0.330),
        make_span("s-b2", name="net.agreement", service="backend:1",
                  parent_id="s-b1", start_s=900.02, duration_s=0.300),
    ]


# -- TelemetryBuffer ---------------------------------------------------------


def test_buffer_rejects_bad_capacity():
    with pytest.raises(ConfigurationError):
        TelemetryBuffer("svc", max_spans=0)
    with pytest.raises(ConfigurationError):
        TelemetryBuffer("svc", max_events=0)


def test_flush_drains_tracer_and_stamps_service():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    buffer = TelemetryBuffer("backend:7", tracer=tracer)
    assert buffer.flush() == 2
    # the tracer was consumed: a second flush finds nothing new
    assert buffer.flush() == 0
    doc = buffer.document()
    assert doc["schema"] == TELEMETRY_SCHEMA
    assert doc["service"] == "backend:7"
    assert {s["name"] for s in doc["spans"]} == {"outer", "inner"}
    assert all(s["service"] == "backend:7" for s in doc["spans"])


def test_flush_event_seq_watermark():
    """Each event is collected exactly once across repeated flushes."""
    events = EventLog()
    events.emit("session.established", session_id="s1")
    buffer = TelemetryBuffer("svc", events=events)
    buffer.flush()
    events.emit("session.closed", session_id="s1")
    buffer.flush()
    buffer.flush()
    doc = buffer.document()
    assert [e["kind"] for e in doc["events"]] == [
        "session.established", "session.closed",
    ]


def test_document_drain_is_exactly_once():
    buffer = TelemetryBuffer("svc")
    buffer.add_spans([make_span("s-1")])
    first = buffer.document(drain=True)
    assert len(first["spans"]) == 1
    assert buffer.document()["spans"] == []
    # peek (the default) leaves the ring intact
    buffer.add_spans([make_span("s-2")])
    buffer.document()
    assert len(buffer.document()["spans"]) == 1


def test_add_spans_preserves_existing_service_stamp():
    """The gateway funnel must not overwrite a backend's identity."""
    buffer = TelemetryBuffer("gateway")
    buffer.add_spans(
        [make_span("s-1", service="backend:1"), make_span("s-2")],
        service="backend:2",
    )
    services = {
        s["span_id"]: s["service"] for s in buffer.document()["spans"]
    }
    assert services == {"s-1": "backend:1", "s-2": "backend:2"}


def test_span_ring_bounds_and_drop_counter():
    buffer = TelemetryBuffer("svc", max_spans=3)
    buffer.add_spans(make_span(f"s-{i}") for i in range(5))
    assert len(buffer) == 3
    assert buffer.dropped_spans == 2
    doc = buffer.document()
    assert doc["dropped_spans"] == 2
    # oldest evicted: the ring keeps the most recent spans
    assert [s["span_id"] for s in doc["spans"]] == ["s-2", "s-3", "s-4"]


def test_event_to_dict_carries_trace_correlation():
    tracer = Tracer()
    events = EventLog()
    with tracer.span("work") as span:
        events.emit("session.established", session_id="s9", peer="mobile")
    (event,) = events.query()
    payload = event_to_dict(event, "svc")
    assert payload["trace_id"] == span.trace_id
    assert payload["span_id"] == span.span_id
    assert payload["service"] == "svc"
    assert payload["fields"] == {"peer": "mobile"}


# -- stitch ------------------------------------------------------------------


def test_stitch_dedupes_spans_by_id():
    """A gateway scrape and a direct backend scrape may both return
    the same backend span; the stitcher keeps exactly one copy."""
    backend_span = make_span("s-b1", service="backend:1")
    gateway_doc = {
        "service": "gateway",
        "spans": [make_span("s-g1"), dict(backend_span)],
        "events": [],
    }
    backend_doc = {
        "service": "backend:1",
        "spans": [dict(backend_span)],
        "events": [],
    }
    stitched = stitch([gateway_doc, backend_doc])
    assert sorted(s["span_id"] for s in stitched["spans"]) == [
        "s-b1", "s-g1",
    ]
    assert stitched["services"] == ["gateway", "backend:1"]


def test_stitch_dedupes_events_by_service_and_seq():
    event = {"seq": 3, "kind": "session.closed", "service": "backend:1",
             "span_id": None, "trace_id": None}
    doc_a = {"service": "gateway", "spans": [], "events": [dict(event)]}
    doc_b = {"service": "backend:1", "spans": [], "events": [dict(event)]}
    stitched = stitch([doc_a, doc_b])
    assert len(stitched["events"]) == 1
    # same seq from a different service is a different event
    other = dict(event, service="backend:2")
    stitched = stitch([doc_a, {"service": "backend:2", "spans": [],
                               "events": [other]}])
    assert len(stitched["events"]) == 2


def test_stitch_admits_span_objects_as_extra_spans():
    """``--trace-out`` JSONL loads as Span objects; they join the
    stitched set stamped with the extra service."""
    span = Span(name="net.establish", trace_id="t-1", span_id="s-c1",
                parent_id=None, start_s=0.0, end_s=0.4)
    stitched = stitch([], extra_spans=[span], extra_service="client")
    (rendered,) = stitched["spans"]
    assert rendered["service"] == "client"
    assert "client" in stitched["services"]


def test_trace_ids_and_filter_trace():
    spans = three_service_trace() + [
        make_span("s-x1", trace_id="t-2", service="client")
    ]
    stitched = stitch(
        [{"service": "all", "spans": spans, "events": []}]
    )
    assert trace_ids(stitched["spans"]) == ["t-1", "t-2"]
    only = filter_trace(stitched, "t-2")
    assert [s["span_id"] for s in only["spans"]] == ["s-x1"]


# -- hop breakdown -----------------------------------------------------------


def test_hop_breakdown_identifies_service_boundaries():
    rows = hop_breakdown(three_service_trace())
    hops = {(r["service"], r["span"]) for r in rows}
    # client root + both gateway spans (parent lives client-side) +
    # the backend's local root; net.hello/net.agreement are same-
    # service children, not hops
    assert hops == {
        ("client", "net.establish"),
        ("gateway", "cluster.route"),
        ("gateway", "cluster.splice"),
        ("backend:1", "session"),
    }
    # sorted by duration, root first
    assert rows[0]["span"] == "net.establish"
    assert rows[0]["share"] == pytest.approx(1.0)
    splice = next(r for r in rows if r["span"] == "cluster.splice")
    assert splice["share"] == pytest.approx(0.337 / 0.340, rel=1e-6)


def test_hop_breakdown_orphan_parent_counts_as_hop():
    """A span whose parent was never scraped is still a hop row —
    partial fleets degrade to per-fragment accounting, not KeyErrors."""
    rows = hop_breakdown([
        make_span("s-1", parent_id="s-missing", service="backend:1"),
    ])
    assert len(rows) == 1
    assert rows[0]["share"] is None  # no finished root to budget against


def test_hop_breakdown_open_span_has_no_duration():
    rows = hop_breakdown([
        make_span("s-1", service="client", duration_s=None),
    ])
    assert rows[0]["duration_ms"] is None


# -- rendering ---------------------------------------------------------------


def stitched_three_service(events=()):
    return stitch([{
        "service": "all",
        "spans": three_service_trace(),
        "events": list(events),
    }])


def test_format_stitched_tree_shape():
    text = format_stitched(stitched_three_service())
    lines = text.splitlines()
    assert lines[0] == "trace t-1"
    assert "└─ net.establish (340.00 ms) @client" in lines[1]
    # gateway + backend spans nest under the client's net.hello
    hello_index = next(
        i for i, line in enumerate(lines) if "net.hello" in line
    )
    nested = "\n".join(lines[hello_index:])
    assert "├─ session (330.00 ms) @backend:1" in nested
    assert "└─ cluster.splice (337.00 ms) @gateway" in nested
    # breakdown table trails the tree
    assert "cross-hop latency breakdown:" in text
    assert "cluster.splice" in text.split("breakdown:")[1]
    assert "99%" in text.split("breakdown:")[1]


def test_format_stitched_folds_events_under_spans():
    event = {"seq": 0, "kind": "session.established", "service": "all",
             "trace_id": "t-1", "span_id": "s-b1",
             "fields": {"peer": "mobile"}}
    text = format_stitched(stitched_three_service([event]))
    assert "· event session.established  [peer=mobile]" in text
    # the folded line sits under the backend session span
    session_line, event_line = (
        next(i for i, l in enumerate(text.splitlines()) if marker in l)
        for marker in ("session (", "· event")
    )
    assert event_line > session_line


def test_format_stitched_flags_errors_and_open_spans():
    spans = [
        make_span("s-1", name="access.resume", service="client",
                  status="error", error="no live ticket"),
        make_span("s-2", name="net.round", service="client",
                  parent_id="s-1", duration_s=None),
    ]
    text = format_stitched(
        stitch([{"service": "all", "spans": spans, "events": []}])
    )
    assert "!error" in text
    assert "[error=no live ticket]" in text
    assert "(open)" in text


def test_format_stitched_multiple_roots_connectors():
    """Only the final orphan root gets the terminal connector."""
    spans = [
        make_span("s-1", name="a", service="x"),
        make_span("s-2", name="b", service="y"),
    ]
    text = format_stitched(
        stitch([{"service": "all", "spans": spans, "events": []}])
    )
    lines = [l for l in text.splitlines() if "─" in l]
    assert lines[0].startswith("├─ ")
    assert lines[1].startswith("└─ ")


def test_format_stitched_renders_one_tree_per_trace():
    spans = three_service_trace() + [
        make_span("s-x1", name="access.resume", trace_id="t-2",
                  service="client")
    ]
    text = format_stitched(
        stitch([{"service": "all", "spans": spans, "events": []}])
    )
    assert "trace t-1" in text
    assert "trace t-2" in text


def test_format_stitched_empty():
    assert format_stitched({"spans": [], "events": []}) == "(no spans)"
