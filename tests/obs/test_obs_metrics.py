"""Unit tests for labeled metrics, snapshots, and Prometheus rendering."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    normalize_snapshot,
    render_prometheus,
    snapshot_percentile,
)


class TestLabels:
    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        imu = registry.counter("pipeline.windows", labels={"encoder": "imu_en"})
        rf = registry.counter("pipeline.windows", labels={"encoder": "rf_en"})
        assert imu is not rf
        imu.inc(3)
        rf.inc(1)
        snap = registry.snapshot()
        assert snap["counters"]['pipeline.windows{encoder="imu_en"}'] == 3
        assert snap["counters"]['pipeline.windows{encoder="rf_en"}'] == 1

    def test_same_labels_are_memoized(self):
        registry = MetricsRegistry()
        a = registry.histogram("h", labels={"x": "1"})
        b = registry.histogram("h", labels={"x": "1"})
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"a": "1", "b": "2"})
        b = registry.counter("c", labels={"b": "2", "a": "1"})
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == pytest.approx(3.0)

    def test_registry_snapshot_includes_gauges_when_present(self):
        registry = MetricsRegistry()
        snap = registry.snapshot()
        assert "gauges" not in snap
        registry.gauge("service.queue_depth").set(7)
        snap = registry.snapshot()
        assert snap["gauges"]["service.queue_depth"] == pytest.approx(7.0)


class TestPrometheusRender:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("requests", labels={"mode": "fast"}).inc(2)
        registry.gauge("depth").set(5)
        registry.histogram("latency_s", bounds=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert '# TYPE requests counter' in text
        assert 'requests{mode="fast"} 2' in text
        assert "# TYPE depth gauge" in text
        assert "depth 5.0" in text
        assert "# TYPE latency_s histogram" in text
        assert 'latency_s_bucket{le="0.1"} 1' in text
        # buckets are cumulative and always end with +Inf == count
        assert 'latency_s_bucket{le="1.0"} 1' in text
        assert 'latency_s_bucket{le="+Inf"} 1' in text
        assert "latency_s_count 1" in text

    def test_metric_names_are_mangled(self):
        registry = MetricsRegistry()
        registry.counter("service.shed").inc()
        text = registry.render_prometheus()
        assert "service_shed 1" in text

    def test_module_function_accepts_json_round_trip(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(registry.snapshot()))
        # JSON stringifies bucket keys; restore before rendering.
        for hist in snap["histograms"].values():
            hist["buckets"] = {
                float(k): v for k, v in hist["buckets"].items()
            }
        text = render_prometheus(snap)
        assert 'h_bucket{le="1.0"} 1' in text


class TestMergeSnapshots:
    def test_counters_add_and_gauges_take_last(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("n").inc(2)
        r2.counter("n").inc(3)
        r1.gauge("g").set(1)
        r2.gauge("g").set(9)
        merged = merge_snapshots(r1.snapshot(), r2.snapshot())
        assert merged["counters"]["n"] == 5
        assert merged["gauges"]["g"] == pytest.approx(9.0)

    def test_histogram_buckets_add(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        for v in (0.5, 2.0):
            r1.histogram("h", bounds=(1.0,)).observe(v)
        r2.histogram("h", bounds=(1.0,)).observe(0.25)
        merged = merge_snapshots(r1.snapshot(), r2.snapshot())
        hist = merged["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["buckets"][1.0] == 2
        assert hist["overflow"] == 1
        assert hist["min"] == pytest.approx(0.25)
        assert hist["max"] == pytest.approx(2.0)
        assert hist["mean"] == pytest.approx((0.5 + 2.0 + 0.25) / 3)

    def test_mismatched_bounds_are_rejected(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("h", bounds=(1.0,)).observe(0.5)
        r2.histogram("h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError):
            merge_snapshots(r1.snapshot(), r2.snapshot())


_FLEET_BOUNDS = (0.1, 0.2, 0.4, 0.8)


def _backend_snapshot(name, latencies, established):
    """One simulated backend registry: a shared-series histogram, a
    per-backend labeled histogram, and a state-labeled counter."""
    registry = MetricsRegistry()
    shared = registry.histogram("service.total_s", bounds=_FLEET_BOUNDS)
    local = registry.histogram(
        "service.total_s", bounds=_FLEET_BOUNDS,
        labels={"backend": name},
    )
    for value in latencies:
        shared.observe(value)
        local.observe(value)
    registry.counter(
        "service.sessions", labels={"state": "established"}
    ).inc(established)
    return registry.snapshot()


def _fleet_snapshots():
    """Three backend snapshots with hand-computable merged stats.

    Merged service.total_s: 6 observations
    [0.05, 0.15, 0.25, 0.35, 0.3, 1.0] -> buckets
    {0.1: 1, 0.2: 1, 0.4: 3, 0.8: 0}, overflow 1,
    min 0.05, max 1.0, total 2.10.
    """
    return [
        _backend_snapshot("b1", [0.05, 0.15], established=3),
        _backend_snapshot("b2", [0.25, 0.35], established=2),
        _backend_snapshot("b3", [0.3, 1.0], established=1),
    ]


class TestFleetMerge:
    def test_three_backend_merge_hand_computed(self):
        merged = merge_snapshots(*_fleet_snapshots())
        assert (
            merged["counters"]['service.sessions{state="established"}'] == 6
        )
        hist = merged["histograms"]["service.total_s"]
        assert hist["count"] == 6
        assert hist["buckets"] == {0.1: 1, 0.2: 1, 0.4: 3, 0.8: 0}
        assert hist["overflow"] == 1
        assert hist["min"] == pytest.approx(0.05)
        assert hist["max"] == pytest.approx(1.0)
        assert hist["total"] == pytest.approx(2.10)
        assert hist["mean"] == pytest.approx(0.35)

    def test_labeled_series_stay_per_backend(self):
        merged = merge_snapshots(*_fleet_snapshots())
        for name, count in (("b1", 2), ("b2", 2), ("b3", 2)):
            series = f'service.total_s{{backend="{name}"}}'
            assert merged["histograms"][series]["count"] == count

    def test_merged_percentiles_hand_computed(self):
        merged = merge_snapshots(*_fleet_snapshots())
        hist = merged["histograms"]["service.total_s"]
        # p50: rank 3 lands in the (0.2, 0.4] bucket holding items
        # 3..5, one third in: 0.2 + (1/3) * 0.2.
        assert snapshot_percentile(hist, 0.50) == pytest.approx(
            0.2 + 0.2 / 3
        )
        # p99: rank 5.94 lands in the overflow bucket -> true max.
        assert snapshot_percentile(hist, 0.99) == pytest.approx(1.0)

    def test_merge_is_order_independent(self):
        snapshots = _fleet_snapshots()
        forward = merge_snapshots(*snapshots)
        backward = merge_snapshots(*reversed(_fleet_snapshots()))
        assert forward["counters"] == backward["counters"]
        assert forward["histograms"] == backward["histograms"]

    def test_json_round_tripped_snapshot_merges_after_normalize(self):
        live, scraped, third = _fleet_snapshots()
        scraped = json.loads(json.dumps(scraped))
        with pytest.raises(ConfigurationError):
            merge_snapshots(live, scraped)  # string vs float bucket keys
        merged = merge_snapshots(
            live, normalize_snapshot(scraped), third
        )
        assert merged["histograms"]["service.total_s"]["count"] == 6


class TestSnapshotPercentile:
    def test_matches_live_histogram(self):
        hist = Histogram("h", bounds=tuple(
            float(b) for b in range(10, 101, 10)
        ))
        for value in range(1, 101):
            hist.observe(float(value))
        snap = hist.snapshot()
        for q in (0.25, 0.5, 0.9, 0.99, 1.0):
            assert snapshot_percentile(snap, q) == pytest.approx(
                hist.percentile(q)
            )

    def test_empty_snapshot_reports_zero(self):
        snap = Histogram("h", bounds=(1.0,)).snapshot()
        assert snapshot_percentile(snap, 0.5) == 0.0

    def test_quantile_domain_is_validated(self):
        snap = Histogram("h", bounds=(1.0,)).snapshot()
        with pytest.raises(ConfigurationError):
            snapshot_percentile(snap, 0.0)
        with pytest.raises(ConfigurationError):
            snapshot_percentile(snap, 1.5)


class TestInterpolatedPercentiles:
    def test_uniform_distribution_pins_p50_p99(self):
        hist = Histogram("h", bounds=tuple(float(b) for b in range(10, 101, 10)))
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(0.5) == pytest.approx(50.0)
        assert hist.percentile(0.99) == pytest.approx(99.0)

    def test_estimate_clamped_to_observed_range(self):
        hist = Histogram("h", bounds=(10.0,))
        hist.observe(4.0)
        hist.observe(6.0)
        # Interpolation alone would say 5 for p50 and 10 for p100; the
        # clamp keeps estimates inside [min, max].
        assert 4.0 <= hist.percentile(0.5) <= 6.0
        assert hist.percentile(1.0) <= 6.0

    def test_overflow_reports_true_max(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        hist.observe(123.0)
        assert hist.percentile(0.99) == pytest.approx(123.0)


class TestExemplars:
    def test_untraced_observations_never_become_exemplars(self):
        hist = Histogram("h", bounds=(1.0,))
        for _ in range(10):
            hist.observe(5.0)
        assert hist.exemplar is None

    def test_tail_observation_is_retained_with_trace(self):
        hist = Histogram("h", bounds=(1.0,), exemplar_percentile=0.9)
        for v in range(1, 100):
            hist.observe(float(v))
        hist.observe(250.0, trace_id="t-slow")
        assert hist.exemplar == {"value": 250.0, "trace_id": "t-slow"}

    def test_below_percentile_observation_is_not_retained(self):
        hist = Histogram("h", bounds=(100.0,), exemplar_percentile=0.99)
        for v in range(1, 100):
            hist.observe(float(v))
        hist.observe(2.0, trace_id="t-fast")  # far below p99
        assert hist.exemplar is None

    def test_highest_traced_value_wins(self):
        hist = Histogram("h", bounds=(1.0,), exemplar_percentile=0.5)
        hist.observe(10.0, trace_id="t-a")
        hist.observe(30.0, trace_id="t-b")
        hist.observe(20.0, trace_id="t-c")  # smaller: ignored
        assert hist.exemplar == {"value": 30.0, "trace_id": "t-b"}

    def test_snapshot_carries_exemplar(self):
        hist = Histogram("h", bounds=(1.0,), exemplar_percentile=0.5)
        hist.observe(10.0, trace_id="t-a")
        snap = hist.snapshot()
        assert snap["exemplar"] == {"value": 10.0, "trace_id": "t-a"}
        # and stays absent when never set
        assert "exemplar" not in Histogram("h", bounds=(1.0,)).snapshot()

    def test_merge_keeps_highest_valued_exemplar_per_series(self):
        """Fleet merge: the worst traced tail observation wins."""
        fast = MetricsRegistry()
        fast.histogram("net.session.latency", bounds=(1.0,),
                       exemplar_percentile=0.5).observe(
            0.2, trace_id="t-fast")
        slow = MetricsRegistry()
        slow.histogram("net.session.latency", bounds=(1.0,),
                       exemplar_percentile=0.5).observe(
            0.9, trace_id="t-slow")
        for order in ((fast, slow), (slow, fast)):
            merged = merge_snapshots(*(r.snapshot() for r in order))
            exemplar = merged["histograms"]["net.session.latency"][
                "exemplar"]
            assert exemplar == {"value": 0.9, "trace_id": "t-slow"}

    def test_merge_tolerates_exemplar_on_one_side_only(self):
        bare = MetricsRegistry()
        bare.histogram("h", bounds=(1.0,)).observe(0.5)
        traced = MetricsRegistry()
        traced.histogram("h", bounds=(1.0,),
                         exemplar_percentile=0.5).observe(
            0.7, trace_id="t-x")
        merged = merge_snapshots(bare.snapshot(), traced.snapshot())
        assert merged["histograms"]["h"]["exemplar"]["trace_id"] == "t-x"
        neither = merge_snapshots(bare.snapshot(), bare.snapshot())
        assert "exemplar" not in neither["histograms"]["h"]

    def test_merged_snapshot_percentiles_still_interpolate(self):
        """Exemplar bookkeeping must not disturb merged percentile
        math: the merged estimate matches one registry holding all
        observations."""
        bounds = tuple(float(b) for b in range(10, 101, 10))
        left = MetricsRegistry()
        right = MetricsRegistry()
        union = MetricsRegistry()
        for v in range(1, 101):
            target = left if v % 2 else right
            target.histogram("h", bounds=bounds).observe(
                float(v), trace_id=f"t-{v}")
            union.histogram("h", bounds=bounds).observe(float(v))
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        for q in (0.5, 0.9, 0.99):
            assert snapshot_percentile(
                merged["histograms"]["h"], q
            ) == pytest.approx(union.histogram("h", bounds=bounds)
                               .percentile(q))

    def test_render_prometheus_exemplar_suffix(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "access.resume.latency", bounds=(0.1, 1.0),
            exemplar_percentile=0.5,
        )
        hist.observe(0.05)
        hist.observe(0.8, trace_id="t-slow")
        text = render_prometheus(registry.snapshot())
        # annotation rides the first cumulative bucket containing the
        # exemplar value, OpenMetrics style, exactly once
        assert ('access_resume_latency_bucket{le="1.0"} 2 '
                '# {trace_id="t-slow"} 0.8') in text
        assert text.count("t-slow") == 1
        # exemplar-free series render without annotations
        bare = MetricsRegistry()
        bare.histogram("h", bounds=(1.0,)).observe(0.5)
        assert "#" not in render_prometheus(bare.snapshot()).replace(
            "# TYPE", "")
