"""Ring-buffer semantics of the structured event log."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import EventLog


class TestRingBuffer:
    def test_evicts_oldest_not_newest(self):
        log = EventLog(capacity=3)
        for kind in ("a", "b", "c", "d", "e"):
            log.emit(kind)
        # The most recent window survives; the oldest two were evicted.
        assert [e.kind for e in log.query()] == ["c", "d", "e"]

    def test_dropped_counts_evictions_accurately(self):
        log = EventLog(capacity=2)
        assert log.dropped == 0
        log.emit("a")
        log.emit("b")
        assert log.dropped == 0
        log.emit("c")
        log.emit("d")
        assert log.dropped == 2
        assert len(log) == 2

    def test_query_preserves_emission_order_after_wrap(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", n=i)
        events = log.query()
        assert [e.fields["n"] for e in events] == [6, 7, 8, 9]
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)

    def test_filters_still_apply_after_wrap(self):
        log = EventLog(capacity=3)
        log.emit("admitted", session_id="s1")
        log.emit("established", session_id="s1")
        log.emit("admitted", session_id="s2")
        log.emit("established", session_id="s2")  # evicts s1's admission
        assert [e.session_id for e in log.query(kind="established")] == [
            "s1", "s2",
        ]
        assert [e.kind for e in log.query(session_id="s2")] == [
            "admitted", "established",
        ]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)
