"""Unit tests for the hierarchical span tracer."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    NULL_TRACER,
    Span,
    Tracer,
    current_span,
    current_tracer,
    format_trace_tree,
    load_trace_jsonl,
    resolve_tracer,
    use_default_tracer,
)


class TestSpanLifecycle:
    def test_span_context_manager_finishes_and_stores(self):
        tracer = Tracer()
        with tracer.span("work", n=3) as span:
            assert span.finished is False
            assert current_span() is span
        assert current_span() is None
        finished = tracer.finished_spans()
        assert [s.name for s in finished] == ["work"]
        assert finished[0].attributes == {"n": 3}
        assert finished[0].duration_s >= 0.0
        assert finished[0].status == "ok"

    def test_nested_spans_share_trace_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        roots = [s for s in tracer.finished_spans() if s.parent_id is None]
        assert [s.name for s in roots] == ["outer"]

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.finished_spans()
        assert span.status == "error"
        assert "boom" in span.attributes["error"]
        assert current_span() is None

    def test_explicit_parent_overrides_active_stack(self):
        tracer = Tracer()
        root = tracer.start_span("root", parent=None)
        with tracer.span("unrelated"):
            with tracer.span("child", parent=root) as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id

    def test_record_span_is_retroactive(self):
        tracer = Tracer()
        span = tracer.record_span("waited", start_s=10.0, end_s=10.5, k=1)
        assert span.duration_s == pytest.approx(0.5)
        assert tracer.finished_spans() == [span]

    def test_max_spans_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for i in range(4):
            with tracer.span(f"s{i}", parent=None):
                pass
        assert len(tracer.finished_spans()) == 2
        assert tracer.dropped == 2

    def test_rejects_bad_max_spans(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)


class TestDisabledTracer:
    def test_null_tracer_spans_are_free_noops(self):
        with NULL_TRACER.span("anything", k=1) as span:
            assert not span
            span.set_attribute("x", 2)
        assert NULL_TRACER.finished_spans() == []
        assert current_span() is None

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record_span("x", start_s=0.0, end_s=1.0)
        with tracer.span("y"):
            pass
        assert tracer.finished_spans() == []


class TestTracerResolution:
    def test_explicit_tracer_wins(self):
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer

    def test_active_span_carries_its_tracer(self):
        tracer = Tracer()
        assert current_tracer() is None
        with tracer.span("outer"):
            assert current_tracer() is tracer
            assert resolve_tracer(None) is tracer
        assert resolve_tracer(None) is NULL_TRACER

    def test_default_tracer_scoping(self):
        tracer = Tracer()
        with use_default_tracer(tracer):
            assert resolve_tracer(None) is tracer
        assert resolve_tracer(None) is NULL_TRACER


class TestCrossThreadHandoff:
    def test_activate_reparents_on_another_thread(self):
        tracer = Tracer()
        root = tracer.start_span("root", parent=None)
        child_ids = {}

        def worker():
            with tracer.activate(root):
                with tracer.span("child") as child:
                    child_ids["parent"] = child.parent_id
                    child_ids["trace"] = child.trace_id

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        tracer.finish_span(root)
        assert child_ids["parent"] == root.span_id
        assert child_ids["trace"] == root.trace_id


class TestExportAndRender:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", session_id="s1"):
            with tracer.span("step"):
                pass
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count == 2
        loaded = load_trace_jsonl(str(path))
        assert {s.name for s in loaded} == {"root", "step"}
        by_name = {s.name: s for s in loaded}
        assert by_name["step"].parent_id == by_name["root"].span_id
        assert by_name["root"].attributes["session_id"] == "s1"

    def test_format_trace_tree_shows_hierarchy(self):
        tracer = Tracer()
        with tracer.span("session"):
            with tracer.span("encode"):
                pass
            with tracer.span("ot"):
                pass
        text = format_trace_tree(tracer.finished_spans())
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert "session" in lines[1]
        # children are indented under the root, in start order
        assert lines[2].index("encode") > lines[1].index("session")
        assert "ot" in lines[3]

    def test_format_trace_tree_promotes_orphans(self):
        orphan = Span(
            name="lost", trace_id="t1", span_id="s2",
            parent_id="missing", start_s=0.0, end_s=1.0,
        )
        text = format_trace_tree([orphan])
        assert "lost" in text

    def test_format_empty(self):
        assert format_trace_tree([]) == "(no spans)"
