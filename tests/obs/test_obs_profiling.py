"""Per-layer profiling hooks on the minimal neural-network stack."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.sequential import Sequential
from repro.obs import LayerProfiler, Tracer, flop_estimate


def small_net():
    rng = np.random.default_rng(0)
    return Sequential(
        Dense(4, 8, rng=rng, name="fc1"),
        ReLU(name="act"),
        Dense(8, 2, rng=rng, name="fc2"),
        name="net",
    )


class TestFlopEstimate:
    def test_dense_multiply_add_count(self):
        layer = Dense(4, 8, rng=np.random.default_rng(0))
        assert flop_estimate(layer, (3, 4), (3, 8)) == 2 * 3 * 4 * 8

    def test_relu_counts_elements(self):
        assert flop_estimate(ReLU(), (3, 8), (3, 8)) == 24

    def test_unknown_layer_returns_none(self):
        class Odd:
            pass

        assert flop_estimate(Odd(), (1, 4), (1, 4)) is None


class TestLayerProfiler:
    def test_attached_profiler_aggregates_per_layer(self):
        net = small_net()
        profiler = LayerProfiler()
        net.profiler = profiler
        x = np.ones((5, 4))
        net.forward(x)
        net.forward(x)
        stats = profiler.stats()
        assert set(stats) == {"net/fc1", "net/act", "net/fc2"}
        fc1 = stats["net/fc1"]
        assert fc1["type"] == "Dense"
        assert fc1["calls"] == 2
        assert fc1["total_items"] == 10
        assert fc1["total_flops"] == 2 * (2 * 5 * 4 * 8)
        assert fc1["total_s"] >= 0.0
        assert fc1["min_s"] <= fc1["max_s"]

    def test_shared_profiler_keys_by_container(self):
        profiler = LayerProfiler()
        a, b = small_net(), small_net()
        b.name = "other"
        a.profiler = profiler
        b.profiler = profiler
        x = np.ones((1, 4))
        a.forward(x)
        b.forward(x)
        assert "net/fc1" in profiler.stats()
        assert "other/fc1" in profiler.stats()

    def test_emits_spans_under_active_tracer(self):
        net = small_net()
        tracer = Tracer()
        net.profiler = LayerProfiler(tracer=tracer)
        with tracer.span("encode") as encode:
            net.forward(np.ones((2, 4)))
        spans = {s.name: s for s in tracer.finished_spans()}
        assert "nn.net/fc1" in spans
        assert spans["nn.net/fc1"].parent_id == encode.span_id
        assert spans["nn.net/fc1"].attributes["batch_size"] == 2
        assert spans["nn.net/fc1"].attributes["flops"] == 2 * 2 * 4 * 8

    def test_disabled_profiler_records_nothing(self):
        net = small_net()
        profiler = LayerProfiler(enabled=False)
        net.profiler = profiler
        net.forward(np.ones((1, 4)))
        assert profiler.stats() == {}

    def test_detached_forward_matches_profiled_forward(self):
        net = small_net()
        x = np.ones((3, 4))
        plain = net.forward(x)
        net.profiler = LayerProfiler()
        profiled = net.forward(x)
        np.testing.assert_allclose(plain, profiled)

    def test_report_lines_render(self):
        net = small_net()
        profiler = LayerProfiler()
        net.profiler = profiler
        net.forward(np.ones((1, 4)))
        lines = profiler.report_lines()
        assert len(lines) == 4  # header + 3 layers
        assert any("net/fc1" in line for line in lines)
        profiler.reset()
        assert profiler.report_lines() == ["(no profiled forwards)"]
