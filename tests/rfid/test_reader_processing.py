"""Tests for the reader model and the server-side DSP pipeline."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gesture import default_volunteers, sample_gesture
from repro.rfid import (
    ChannelGeometry,
    RFIDProcessingConfig,
    RFIDReader,
    ReaderProfile,
    default_environments,
    default_tags,
    process_rfid_record,
    savitzky_golay,
    unwrap_phase,
)


@pytest.fixture(scope="module")
def gesture_and_record():
    trajectory = sample_gesture(default_volunteers()[0], rng=61,
                                active_s=4.0)
    channel = default_environments()[0].build_channel(
        default_tags()[0], ChannelGeometry(), dynamic=False, rng=62
    )
    record = RFIDReader().record_gesture(channel, trajectory, rng=63)
    return trajectory, channel, record


class TestUnwrapPhase:
    def test_removes_upward_jump(self):
        wrapped = np.array([6.0, 6.2, 0.2, 0.4])  # wrapped past 2 pi
        unwrapped = unwrap_phase(wrapped)
        assert np.abs(np.diff(unwrapped)).max() < np.pi

    def test_removes_downward_jump(self):
        wrapped = np.array([0.4, 0.1, 6.1, 5.9])
        unwrapped = unwrap_phase(wrapped)
        assert np.abs(np.diff(unwrapped)).max() < np.pi

    def test_matches_numpy_unwrap(self):
        rng = np.random.default_rng(0)
        # A smooth signal wrapped into [0, 2 pi).
        true = np.cumsum(rng.normal(0, 0.4, 500))
        wrapped = np.mod(true, 2 * np.pi)
        np.testing.assert_allclose(
            unwrap_phase(wrapped) - unwrap_phase(wrapped)[0],
            np.unwrap(wrapped) - np.unwrap(wrapped)[0],
            atol=1e-9,
        )

    def test_empty_and_single(self):
        assert unwrap_phase(np.array([])).size == 0
        np.testing.assert_array_equal(unwrap_phase(np.array([1.0])), [1.0])


class TestSavitzkyGolay:
    def test_preserves_smooth_extrema(self):
        t = np.linspace(0, 2, 400)
        clean = np.sin(2 * np.pi * t)
        noisy = clean + np.random.default_rng(1).normal(0, 0.05, t.size)
        smoothed = savitzky_golay(noisy, 15, 3)
        assert np.abs(smoothed - clean).max() < 3 * np.abs(
            noisy - clean
        ).max() / 4

    def test_validates_window(self):
        with pytest.raises(SimulationError):
            savitzky_golay(np.zeros(100), window=4)
        with pytest.raises(SimulationError):
            savitzky_golay(np.zeros(100), window=5, polyorder=7)
        with pytest.raises(SimulationError):
            savitzky_golay(np.zeros(3), window=15)


class TestReader:
    def test_record_shape_and_rate(self, gesture_and_record):
        _, _, record = gesture_and_record
        assert record.sample_rate_hz == pytest.approx(200.0)
        assert record.phase_rad.min() >= 0.0
        assert record.phase_rad.max() < 2 * np.pi

    def test_phase_quantization_grid(self):
        profile = ReaderProfile(phase_noise_rad=0.0)
        trajectory = sample_gesture(default_volunteers()[1], rng=3)
        channel = default_environments()[1].build_channel(
            default_tags()[1], ChannelGeometry(), rng=4
        )
        record = RFIDReader(profile).record_gesture(channel, trajectory,
                                                    rng=5)
        step = 2 * np.pi / (1 << profile.phase_quantization_bits)
        ratio = record.phase_rad / step
        np.testing.assert_allclose(ratio, np.round(ratio), atol=1e-6)

    def test_reproducible(self, gesture_and_record):
        trajectory, channel, record = gesture_and_record
        again = RFIDReader().record_gesture(channel, trajectory, rng=63)
        np.testing.assert_array_equal(record.phase_rad, again.phase_rad)


class TestProcessing:
    def test_output_shape(self, gesture_and_record):
        _, _, record = gesture_and_record
        r = process_rfid_record(record)
        assert r.shape == (400, 2)

    def test_phase_tracks_geometry(self, gesture_and_record):
        trajectory, channel, record = gesture_and_record
        r = process_rfid_record(record)
        t = trajectory.motion_onset_s + np.arange(400) / 200.0
        d = np.linalg.norm(
            channel.tag_positions(trajectory, t)
            - channel.geometry.antenna_position,
            axis=1,
        )
        expected = -4 * np.pi * d / channel.wavelength_m
        corr = np.corrcoef(r[:, 0] - r[:, 0].mean(),
                           expected - expected.mean())[0, 1]
        assert corr > 0.85

    def test_magnitudes_positive(self, gesture_and_record):
        _, _, record = gesture_and_record
        r = process_rfid_record(record)
        assert np.all(r[:, 1] > 0)

    def test_offset_window(self, gesture_and_record):
        _, _, record = gesture_and_record
        r0 = process_rfid_record(record, offset_s=0.0)
        r1 = process_rfid_record(record, offset_s=0.5)
        # 0.5 s at 200 Hz = 100 samples of overlap shift.
        np.testing.assert_allclose(r0[100:400, 0], r1[0:300, 0], atol=1e-6)

    def test_bad_offsets(self, gesture_and_record):
        _, _, record = gesture_and_record
        with pytest.raises(SimulationError):
            process_rfid_record(record, offset_s=-1.0)
        with pytest.raises(SimulationError):
            process_rfid_record(record, offset_s=30.0)

    def test_config_sample_count(self):
        config = RFIDProcessingConfig(window_s=1.5)
        assert config.n_samples(200.0) == 300


class TestEnvironments:
    def test_four_presets(self):
        envs = default_environments()
        assert len(envs) == 4
        assert all(env.scatterers for env in envs)

    def test_dynamic_channel_has_walkers(self):
        env = default_environments()[0]
        channel = env.build_channel(
            default_tags()[0], ChannelGeometry(), dynamic=True, rng=1
        )
        assert len(channel.walkers) == env.n_walkers

    def test_static_channel_has_no_walkers(self):
        env = default_environments()[0]
        channel = env.build_channel(
            default_tags()[0], ChannelGeometry(), dynamic=False, rng=1
        )
        assert channel.walkers == []

    def test_walker_paths_differ_per_run(self):
        env = default_environments()[0]
        w1 = env.sample_walkers(rng=1)
        w2 = env.sample_walkers(rng=2)
        assert not np.allclose(w1[0].start, w2[0].start)
