"""Tests for the antenna gain model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rfid import LAIRD_S9028, AntennaProfile


class TestGainPattern:
    def test_boresight_is_unity_relative(self):
        assert LAIRD_S9028.relative_gain(0.0) == pytest.approx(1.0)

    def test_half_power_at_specified_beamwidth(self):
        half = np.deg2rad(LAIRD_S9028.half_power_beamwidth_deg / 2)
        power = LAIRD_S9028.relative_gain(half) ** 2
        assert power == pytest.approx(0.5, rel=1e-6)

    def test_monotone_decreasing_off_axis(self):
        angles = np.deg2rad(np.linspace(0, 85, 30))
        gains = LAIRD_S9028.relative_gain(angles)
        assert np.all(np.diff(gains) <= 1e-12)

    def test_back_hemisphere_at_sidelobe_floor(self):
        floor = 10 ** (LAIRD_S9028.sidelobe_floor_db / 20)
        assert LAIRD_S9028.relative_gain(np.pi * 0.75) == pytest.approx(
            floor
        )

    def test_gain_never_below_floor(self):
        angles = np.linspace(0, np.pi, 100)
        floor = 10 ** (LAIRD_S9028.sidelobe_floor_db / 20)
        assert np.all(LAIRD_S9028.relative_gain(angles) >= floor - 1e-12)

    def test_symmetry(self):
        a = np.deg2rad(37.0)
        assert LAIRD_S9028.relative_gain(a) == pytest.approx(
            LAIRD_S9028.relative_gain(-a)
        )

    def test_absolute_gain_includes_dbic(self):
        boresight = LAIRD_S9028.absolute_gain(0.0)
        assert boresight == pytest.approx(10 ** (8.5 / 20))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AntennaProfile("bad", half_power_beamwidth_deg=5.0)


class TestTagProfiles:
    def test_six_tags_three_models(self):
        from repro.rfid import default_tags

        tags = default_tags()
        assert len(tags) == 6
        assert len({t.model for t in tags}) == 3

    def test_sensitivity_threshold(self):
        from repro.rfid import default_tags

        tag = default_tags()[0]
        assert tag.responds(-10.0)
        assert not tag.responds(-30.0)
