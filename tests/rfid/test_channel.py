"""Tests for the backscatter channel physics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gesture import default_volunteers, sample_gesture
from repro.rfid import (
    BackscatterChannel,
    ChannelGeometry,
    Scatterer,
    WalkingPerson,
    default_tags,
)


@pytest.fixture(scope="module")
def trajectory():
    return sample_gesture(default_volunteers()[0], rng=51)


def make_channel(trajectory_unused=None, **kwargs):
    geometry = kwargs.pop("geometry", ChannelGeometry())
    return BackscatterChannel(geometry, default_tags()[0], **kwargs)


class TestGeometry:
    def test_user_rest_distance(self):
        geo = ChannelGeometry(user_distance_m=5.0, user_azimuth_deg=0.0)
        d = np.linalg.norm(geo.user_rest_position - geo.antenna_position)
        assert d == pytest.approx(5.0)

    def test_azimuth_rotates_about_vertical(self):
        geo = ChannelGeometry(user_distance_m=5.0, user_azimuth_deg=60.0)
        rel = geo.user_rest_position - geo.antenna_position
        assert rel[2] == pytest.approx(0.0)  # stays at antenna height
        assert np.linalg.norm(rel) == pytest.approx(5.0)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            ChannelGeometry(user_distance_m=0.0)
        with pytest.raises(ConfigurationError):
            ChannelGeometry(user_azimuth_deg=90.0)


class TestPhasePhysics:
    def test_phase_tracks_distance(self, trajectory):
        """Backscatter phase advances at 4 pi / lambda per metre."""
        channel = make_channel()
        t = trajectory.motion_onset_s + np.linspace(0.0, 2.0, 400)
        signal = channel.backscatter(trajectory, t)
        phase = np.unwrap(np.angle(signal))
        d = np.linalg.norm(
            channel.tag_positions(trajectory, t)
            - channel.geometry.antenna_position,
            axis=1,
        )
        expected = -4.0 * np.pi * d / channel.wavelength_m
        corr = np.corrcoef(phase - phase.mean(), expected - expected.mean())
        assert corr[0, 1] > 0.95

    def test_magnitude_falls_with_distance(self, trajectory):
        t = np.array([0.1])
        magnitudes = []
        for dist in (1.0, 3.0, 9.0):
            channel = make_channel(
                geometry=ChannelGeometry(user_distance_m=dist)
            )
            magnitudes.append(
                float(np.abs(channel.backscatter(trajectory, t))[0])
            )
        assert magnitudes[0] > magnitudes[1] > magnitudes[2]
        # Two-way radar equation: |h^2| ~ 1/d^2 (one-way amplitude 1/d).
        assert magnitudes[0] / magnitudes[1] == pytest.approx(9.0, rel=0.4)

    def test_off_axis_gain_reduces_magnitude(self, trajectory):
        t = np.array([0.1])
        on_axis = make_channel(
            geometry=ChannelGeometry(user_distance_m=5.0, user_azimuth_deg=0)
        )
        off_axis = make_channel(
            geometry=ChannelGeometry(user_distance_m=5.0, user_azimuth_deg=60)
        )
        m_on = float(np.abs(on_axis.backscatter(trajectory, t))[0])
        m_off = float(np.abs(off_axis.backscatter(trajectory, t))[0])
        assert m_off < m_on

    def test_tag_gain_scales_signal(self, trajectory):
        t = np.array([0.1])
        geo = ChannelGeometry()
        tags = default_tags()
        strong = BackscatterChannel(geo, tags[4])  # dogbone, gain 1.15
        weak = BackscatterChannel(geo, tags[1])  # alien-b, gain 0.96
        ratio = float(
            np.abs(strong.backscatter(trajectory, t))[0]
            / np.abs(weak.backscatter(trajectory, t))[0]
        )
        assert ratio == pytest.approx(1.15 / 0.96, rel=0.05)


class TestMultipath:
    def test_static_scatterer_changes_channel(self, trajectory):
        t = trajectory.motion_onset_s + np.linspace(0.0, 2.0, 100)
        clean = make_channel().backscatter(trajectory, t)
        dirty = make_channel(
            scatterers=[Scatterer(np.array([1.0, 2.5, 1.2]), 0.3)]
        ).backscatter(trajectory, t)
        assert np.abs(clean - dirty).max() > 0

    def test_walker_makes_channel_time_varying(self, trajectory):
        # With the tag stationary (pause segment), a walking person still
        # modulates the channel.
        t = np.linspace(0.0, 0.6, 120)
        walker = WalkingPerson(
            start=np.array([1.0, 3.0, 1.0]),
            velocity=np.array([1.2, 0.0, 0.0]),
        )
        signal = make_channel(walkers=[walker]).backscatter(trajectory, t)
        still = make_channel().backscatter(trajectory, t)
        assert np.abs(signal).std() > np.abs(still).std()

    def test_walker_patrol_stays_bounded(self):
        walker = WalkingPerson(
            start=np.array([0.0, 3.0, 1.0]),
            velocity=np.array([1.0, 0.0, 0.0]),
            patrol_length_m=3.0,
        )
        pos = walker.positions(np.linspace(0, 60, 600))
        assert pos[:, 0].max() <= 3.0 + 0.2
        assert pos[:, 0].min() >= -0.2


class TestValidation:
    def test_rejects_non_uhf_carrier(self):
        with pytest.raises(ConfigurationError):
            BackscatterChannel(
                ChannelGeometry(), default_tags()[0], carrier_hz=1e5
            )

    def test_wavelength(self):
        channel = make_channel()
        assert channel.wavelength_m == pytest.approx(0.3276, rel=1e-3)
