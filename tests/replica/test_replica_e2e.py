"""Replication end-to-end over real sockets.

A three-backend mesh (no gateway — the direct anti-entropy path): a
ticket granted on one backend must resume on every other, a revocation
issued anywhere must be rejected everywhere, and a rebooted backend
must catch up from its peers.  Timing here only uses generous
timeouts; the "within 2 rounds" latency claim is measured by
``benchmarks/test_replica_convergence.py``."""

import time

import pytest

from repro.errors import TicketRevoked, TicketUnknown
from repro.net import ClientTicket, NetClientConfig, WaveKeyNetClient
from repro.replica import fetch_replica_status

CLIENT_CFG = NetClientConfig(
    read_timeout_s=5.0, max_retries=1, backoff_initial_s=0.01
)


def wait_for(predicate, timeout_s=8.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def client_for(address, **kwargs):
    host, _, port = address.rpartition(":")
    return WaveKeyNetClient(host, int(port), CLIENT_CFG, **kwargs)


def establish_on(fleet, index, rng_seed=11):
    client = client_for(fleet.addresses[index])
    result = client.establish(rng_seed=rng_seed)
    assert result.success, result.failure_reason
    assert result.ticket is not None, "no TicketGrant arrived"
    return client, result.ticket


def grant_everywhere(fleet, ticket, timeout_s=8.0):
    assert wait_for(
        lambda: all(
            fleet.store(i).peek(ticket.ticket_id) is not None
            for i in range(len(fleet.backends))
            if fleet.backends[i] is not None
        ),
        timeout_s=timeout_s,
    ), "anti-entropy did not spread the grant to every backend"


def test_any_backend_honours_the_resume(replicated_fleet):
    _, ticket = establish_on(replicated_fleet, 0)
    grant_everywhere(replicated_fleet, ticket)
    # resume against each NON-issuer backend over a fresh connection:
    # the replicated secret must derive working channel keys
    for index in (1, 2):
        other = client_for(replicated_fleet.addresses[index])
        with other.open_channel(ticket) as channel:
            assert channel.request("ping")["pong"] is True


def test_revocation_issued_anywhere_rejects_everywhere(replicated_fleet):
    issuer_client, ticket = establish_on(replicated_fleet, 0)
    grant_everywhere(replicated_fleet, ticket)
    # revoke on a backend that merely *adopted* the grant
    assert client_for(replicated_fleet.addresses[2]).revoke(ticket)

    def revoked_on(index):
        try:
            replicated_fleet.store(index).resume(ticket.ticket_id)
        except TicketRevoked:
            return True
        except Exception:
            return False
        return False

    for index in (0, 1):
        assert wait_for(lambda i=index: revoked_on(i)), (
            f"backend[{index}] still honours the revoked ticket"
        )
    with pytest.raises(TicketRevoked):
        issuer_client.open_channel(ticket)


def test_rebooted_backend_catches_up(replicated_fleet):
    _, ticket = establish_on(replicated_fleet, 0)
    grant_everywhere(replicated_fleet, ticket)
    address = replicated_fleet.kill(2)
    replicated_fleet.rewire()
    replicated_fleet.revive(2, address)
    # the revived process starts an empty store under a fresh origin;
    # one digest pull must hand it the whole suffix
    assert wait_for(
        lambda: replicated_fleet.store(2).peek(ticket.ticket_id)
        is not None,
        timeout_s=10.0,
    ), "rejoined backend never caught up"
    with client_for(replicated_fleet.addresses[2]).open_channel(
        ticket
    ) as channel:
        assert channel.request("ping")["pong"] is True


def test_resume_miss_is_counted(replicated_fleet):
    bogus = ClientTicket(
        ticket_id="00" * 16,
        resume_secret=b"\x07" * 32,
        expires_at=0.0,
        lifetime_s=60.0,
    )
    client = client_for(replicated_fleet.addresses[0])
    with pytest.raises(TicketUnknown):
        client.open_channel(bogus)
    access = replicated_fleet.backends[0][0]
    counters = access.metrics.snapshot()["counters"]
    assert counters["replica.resume.miss"] == 1


def test_status_probe_over_the_wire(replicated_fleet):
    store = replicated_fleet.store(0)
    store.issue(b"\x44" * 32, peer="m")
    host, _, port = replicated_fleet.addresses[0].rpartition(":")
    document = fetch_replica_status(host, int(port))
    assert document["origin"].startswith(replicated_fleet.addresses[0])
    assert document["entries"] >= 1
    assert set(document["peers"]) == set(replicated_fleet.addresses[1:])
