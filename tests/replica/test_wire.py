"""Codec round-trips for the replication frames.

The three ``REPL_*`` frames share one envelope (sender + JSON payload);
each must survive the full wire loop and decode back to its own type —
the dispatch in both front ends is ``isinstance``-driven."""

import json

import pytest

from repro.errors import DecodeError
from repro.net.codec import (
    FrameType,
    ReplDigest,
    ReplPull,
    ReplPush,
    decode_payload,
    encode_message,
)

from tests.net.test_codec import roundtrip

SAMPLE_PAYLOADS = [
    "{}",
    json.dumps({"digest": {"127.0.0.1:4242/abcd1234": 17}}),
    json.dumps({
        "entries": [
            {
                "origin": "127.0.0.1:4242/abcd1234",
                "seq": 3,
                "op": "grant",
                "ticket_id": "ab" * 16,
                "payload": {"resume_secret": "11" * 32,
                            "peer": "mobile-é",
                            "expires_unix": 1.75e9},
                "id": "00" * 16,
            }
        ],
        "digest": {},
    }),
]


@pytest.mark.parametrize("cls,frame_type", [
    (ReplDigest, FrameType.REPL_DIGEST),
    (ReplPull, FrameType.REPL_PULL),
    (ReplPush, FrameType.REPL_PUSH),
])
class TestReplFrames:
    def test_roundtrip_identity(self, cls, frame_type):
        for payload in SAMPLE_PAYLOADS:
            message = cls(sender="10.0.0.7:9000/cafe0001",
                          payload_json=payload)
            decoded = roundtrip(message)
            assert decoded == message
            assert type(decoded) is cls

    def test_frame_type_assignment(self, cls, frame_type):
        frame = encode_message(cls(sender="s", payload_json="{}"))
        assert frame.type == frame_type

    def test_truncated_payload_rejected(self, cls, frame_type):
        frame = encode_message(
            cls(sender="s", payload_json='{"digest": {}}')
        )
        truncated = frame._replace(payload=frame.payload[:-3])
        with pytest.raises(DecodeError):
            decode_payload(truncated)


def test_types_are_distinct_on_the_wire():
    """Same envelope, three frame types: a pull must never decode as a
    push (the receiver's reply depends on which one arrived)."""
    decoded = [
        roundtrip(cls(sender="s", payload_json="{}"))
        for cls in (ReplDigest, ReplPull, ReplPush)
    ]
    assert [type(m) for m in decoded] == [ReplDigest, ReplPull, ReplPush]
