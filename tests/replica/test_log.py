"""ReplicationLog unit tests.

Content-addressed entries, ingest outcomes (new / duplicate / conflict
/ invalid), per-origin high-water digests, and precedence-safe
application against a :class:`KeyStore` — including the delivery-order
edge cases the wire cannot rule out: out-of-order pushes, duplicate
redelivery, and a revocation arriving before its grant."""

import pytest

from repro.access.store import KeyStore
from repro.errors import (
    ReplicationError,
    TicketExpired,
    TicketRevoked,
    TicketUnknown,
)
from repro.obs.metrics import MetricsRegistry
from repro.replica import (
    ReplEntry,
    ReplicationLog,
    compute_entry_id,
    parse_digest,
)

SECRET = b"\x22" * 32


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_entry(origin, seq, op, ticket_id, payload=None):
    payload = dict(payload or {})
    return ReplEntry(
        origin=origin,
        seq=seq,
        op=op,
        ticket_id=ticket_id,
        payload=payload,
        entry_id=compute_entry_id(origin, seq, op, ticket_id, payload),
    )


def grant_payload(expires_unix, *, secret=SECRET, lifetime=60.0):
    return {
        "resume_secret": secret.hex(),
        "peer": "mobile",
        "lifetime_s": lifetime,
        "expires_unix": expires_unix,
        "metadata": {},
    }


def make_node(*, store_now=1000.0, wall_now=5000.0, origin="b"):
    """A store on its own (monotonic-style) clock plus a log whose
    wall clock is deliberately offset from it — the rebasing tests
    only pass if the two are never conflated."""
    store_clock = FakeClock(store_now)
    wall_clock = FakeClock(wall_now)
    store = KeyStore(ttl_s=600.0, clock=store_clock)
    log = ReplicationLog(origin, store, wall_clock=wall_clock)
    return store, log, store_clock, wall_clock


class TestEntryIdentity:
    def test_doc_roundtrip(self):
        entry = make_entry("a/1", 1, "grant", "t1", grant_payload(9.0))
        assert ReplEntry.from_doc(entry.to_doc()) == entry

    def test_tampered_payload_rejected(self):
        entry = make_entry("a/1", 1, "grant", "t1", grant_payload(9.0))
        doc = entry.to_doc()
        doc["payload"]["expires_unix"] = 1e12  # stretch the lifetime
        with pytest.raises(ReplicationError, match="id mismatch"):
            ReplEntry.from_doc(doc)

    def test_tampered_ticket_id_rejected(self):
        doc = make_entry("a/1", 1, "revoke", "t1").to_doc()
        doc["ticket_id"] = "t2"
        with pytest.raises(ReplicationError, match="id mismatch"):
            ReplEntry.from_doc(doc)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("origin"),
            lambda d: d.update(op="grante"),
            lambda d: d.update(seq=0),
            lambda d: d.update(payload=None),
        ],
    )
    def test_malformed_documents_rejected(self, mutate):
        doc = make_entry("a/1", 1, "expire", "t1").to_doc()
        mutate(doc)
        with pytest.raises(ReplicationError):
            ReplEntry.from_doc(doc)

    def test_non_object_rejected(self):
        with pytest.raises(ReplicationError):
            ReplEntry.from_doc(["not", "a", "doc"])


class TestIngest:
    def test_out_of_order_arrival_is_stored_and_applied(self):
        store, log, _, wall = make_node()
        entries = [
            make_entry("a/1", seq, "grant", f"t{seq}",
                       grant_payload(wall.now + 60.0))
            for seq in (1, 2, 3)
        ]
        # seq 3 lands first: held sparsely, applied immediately, but
        # the digest must not advance over the gap.
        assert log.ingest(entries[2]) == "new"
        assert store.peek("t3") is not None
        assert log.digest() == {}
        assert log.ingest(entries[0]) == "new"
        assert log.digest() == {"a/1": 1}
        assert log.ingest(entries[1]) == "new"
        assert log.digest() == {"a/1": 3}
        for seq in (1, 2, 3):
            assert store.resume(f"t{seq}").resumed == 1

    def test_duplicate_redelivery_is_suppressed(self):
        store, log, _, wall = make_node()
        entry = make_entry(
            "a/1", 1, "grant", "t1", grant_payload(wall.now + 60.0)
        )
        assert log.ingest(entry) == "new"
        assert log.ingest(entry) == "duplicate"
        assert log.entries_held() == 1
        # the duplicate was not re-applied: resumed count untouched
        assert store.resume("t1").resumed == 1

    def test_conflicting_entry_first_write_wins(self):
        _, log, _, wall = make_node()
        first = make_entry(
            "a/1", 1, "grant", "t1", grant_payload(wall.now + 60.0)
        )
        imposter = make_entry("a/1", 1, "revoke", "t1")
        assert log.ingest(first) == "new"
        assert log.ingest(imposter) == "conflict"
        assert log.missing_for({}) == [first]

    def test_own_origin_echo_bumps_next_seq(self):
        store, log, _, _ = make_node(origin="b/9")
        echoed = make_entry("b/9", 5, "revoke", "t-old")
        assert log.ingest(echoed) == "new"
        ticket = store.issue(SECRET, peer="m")
        entry = log.record_local("grant", ticket.ticket_id, ticket)
        # without the bump the local append would reuse seq <= 5
        assert entry.seq == 6
        assert log.digest() == {}  # 1..4 missing, nothing contiguous

    def test_invalid_document_does_not_poison_the_batch(self):
        store, log, _, wall = make_node()
        good = make_entry(
            "a/1", 1, "grant", "t1", grant_payload(wall.now + 60.0)
        )
        bad = good.to_doc()
        bad["seq"] = 2  # id no longer matches
        outcomes = log.ingest_documents([bad, good.to_doc()])
        assert outcomes == {
            "new": 1, "duplicate": 0, "conflict": 0, "invalid": 1,
        }
        assert store.peek("t1") is not None


class TestApplication:
    def test_grant_rebases_onto_the_local_store_clock(self):
        store, log, store_clock, wall = make_node(
            store_now=1000.0, wall_now=5000.0
        )
        log.ingest(make_entry(
            "a/1", 1, "grant", "t1",
            grant_payload(wall.now + 40.0, lifetime=60.0),
        ))
        adopted = store.peek("t1")
        assert adopted is not None
        # remaining wall-clock life (40 s), measured from *our* clock
        assert adopted.expires_at == pytest.approx(1040.0)
        store_clock.advance(39.0)
        assert store.resume("t1").resume_secret == SECRET
        store_clock.advance(2.0)
        with pytest.raises(TicketExpired):
            store.resume("t1")

    def test_stale_grant_is_skipped(self):
        store, log, _, wall = make_node()
        metrics = MetricsRegistry()
        log._metrics = metrics
        log.ingest(make_entry(
            "a/1", 1, "grant", "t1", grant_payload(wall.now - 1.0)
        ))
        assert store.peek("t1") is None
        counters = metrics.snapshot()["counters"]
        assert counters[
            'replica.apply{op="grant",outcome="stale"}'
        ] == 1

    def test_revoke_before_grant_still_wins(self):
        store, log, _, wall = make_node()
        # the origin granted (seq 1) then revoked (seq 2), but the
        # entries arrive inverted — precedence must hold regardless
        log.ingest(make_entry("a/1", 2, "revoke", "t1"))
        log.ingest(make_entry(
            "a/1", 1, "grant", "t1", grant_payload(wall.now + 60.0)
        ))
        assert store.peek("t1") is None
        with pytest.raises(TicketRevoked):
            store.resume("t1")

    def test_expire_discards_without_tombstone(self):
        store, log, _, wall = make_node()
        log.ingest(make_entry(
            "a/1", 1, "grant", "t1", grant_payload(wall.now + 60.0)
        ))
        log.ingest(make_entry("a/1", 2, "expire", "t1"))
        assert store.peek("t1") is None
        with pytest.raises(TicketUnknown):  # not revoked: no tombstone
            store.resume("t1")

    def test_relay_log_never_applies(self):
        _, _, _, wall = make_node()
        relay = ReplicationLog("gateway/g")  # no store attached
        entry = make_entry(
            "a/1", 1, "grant", "t1", grant_payload(wall.now + 60.0)
        )
        assert relay.ingest(entry) == "new"
        assert relay.entries_held() == 1


class TestDigestExchange:
    def test_missing_for_sends_only_the_suffix(self):
        _, log, _, wall = make_node()
        entries = [
            make_entry("a/1", seq, "grant", f"t{seq}",
                       grant_payload(wall.now + 60.0))
            for seq in (1, 2, 3)
        ]
        for entry in entries:
            log.ingest(entry)
        assert log.missing_for({"a/1": 3}) == []
        assert log.missing_for({"a/1": 1}) == entries[1:]
        assert log.missing_for({}) == entries

    def test_record_local_feeds_missing_for(self):
        store_clock = FakeClock(1000.0)
        store = KeyStore(ttl_s=600.0, clock=store_clock)
        log = ReplicationLog(
            "a/1", store, wall_clock=FakeClock(5000.0)
        )
        ticket = store.issue(SECRET, peer="mobile")
        entry = log.record_local("grant", ticket.ticket_id, ticket)
        assert entry.payload["resume_secret"] == SECRET.hex()
        assert entry.payload["expires_unix"] == pytest.approx(5600.0)
        assert log.digest() == {"a/1": 1}
        assert log.missing_for({}) == [entry]

    def test_two_logs_converge_by_digest_delta(self):
        a_store, a_log, _, _ = make_node(origin="a/1")
        b_store, b_log, _, _ = make_node(origin="b/1")
        a_log.store = a_store
        ticket = a_store.issue(SECRET, peer="m")
        a_log.record_local("grant", ticket.ticket_id, ticket)
        a_store.revoke(ticket.ticket_id)
        a_log.record_local("revoke", ticket.ticket_id, None)

        delta = a_log.missing_for(b_log.digest())
        b_log.ingest_documents([e.to_doc() for e in delta])
        assert b_log.digest() == a_log.digest()
        with pytest.raises(TicketRevoked):
            b_store.resume(ticket.ticket_id)
        # a second exchange has nothing left to ship
        assert a_log.missing_for(b_log.digest()) == []

    def test_parse_digest_validation(self):
        assert parse_digest({"a": 3, "b": "7"}) == {"a": 3, "b": 7}
        with pytest.raises(ReplicationError):
            parse_digest(["a"])
        with pytest.raises(ReplicationError):
            parse_digest({"a": -1})
        with pytest.raises(ReplicationError):
            parse_digest({"a": "many"})


class TestRecordLocalValidation:
    def test_grant_requires_its_ticket(self):
        _, log, _, _ = make_node()
        with pytest.raises(ReplicationError):
            log.record_local("grant", "t1", None)

    def test_unknown_op_rejected(self):
        _, log, _, _ = make_node()
        with pytest.raises(ReplicationError):
            log.record_local("merge", "t1", None)

    def test_empty_origin_rejected(self):
        with pytest.raises(ReplicationError):
            ReplicationLog("")
