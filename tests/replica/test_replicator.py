"""Replicator engine tests at the frame level (no sockets).

Two engines exchange ``REPL_*`` frames through :meth:`Replicator.handle`
exactly as the front ends dispatch them, covering the convergence
scenarios the wire tests cannot isolate: a rejoining node catching up
via digest pull, two partitions healing to one state, and the refusal
paths (invalid payloads, replication disabled)."""

import json

import pytest

from repro.access.store import KeyStore
from repro.errors import TicketRevoked, TicketUnknown
from repro.net.codec import ErrorFrame, ReplDigest, ReplPull, ReplPush
from repro.net.server import answer_replication
from repro.obs.metrics import MetricsRegistry
from repro.replica import Replicator

SECRET = b"\x33" * 32


@pytest.fixture
def node_factory():
    nodes = []

    def make(key, **kwargs):
        metrics = MetricsRegistry()
        store = KeyStore(ttl_s=600.0, metrics=metrics)
        replicator = Replicator(
            store,
            anti_entropy_interval_s=60.0,  # threads stay idle
            metrics=metrics,
            **kwargs,
        )
        replicator.start(self_key=key)
        nodes.append(replicator)
        return store, replicator

    yield make
    for replicator in nodes:
        replicator.stop()


def pull_round(source, sink):
    """One sink-initiated anti-entropy round, handle-level.

    Mirrors :meth:`Replicator.sync_with`: the sink pulls the suffix it
    lacks (the source's digest rides the reply), then pushes back what
    the source lacks."""
    reply = source.handle(ReplPull(
        sender=sink.origin,
        payload_json=json.dumps({"digest": sink.log.digest()}),
    ))
    assert isinstance(reply, ReplPush), reply
    document = json.loads(reply.payload_json)
    sink.log.ingest_documents(document["entries"])
    missing = sink.log.missing_for(document["digest"])
    if missing:
        ack = source.handle(ReplPush(
            sender=sink.origin,
            payload_json=json.dumps(
                {"entries": [e.to_doc() for e in missing]}
            ),
        ))
        assert isinstance(ack, ReplDigest)


class TestCatchUp:
    def test_rejoining_node_catches_up_by_digest_pull(self, node_factory):
        a_store, a = node_factory("127.0.0.1:7001")
        tickets = [a_store.issue(SECRET, peer="m") for _ in range(3)]
        a_store.revoke(tickets[0].ticket_id)

        b_store, b = node_factory("127.0.0.1:7002")
        pull_round(a, b)

        assert b.log.digest() == a.log.digest()
        with pytest.raises(TicketRevoked):
            b_store.resume(tickets[0].ticket_id)
        for ticket in tickets[1:]:
            resumed = b_store.resume(ticket.ticket_id)
            assert resumed.resume_secret == SECRET

    def test_second_round_ships_nothing(self, node_factory):
        a_store, a = node_factory("127.0.0.1:7001")
        a_store.issue(SECRET, peer="m")
        _, b = node_factory("127.0.0.1:7002")
        pull_round(a, b)
        reply = a.handle(ReplPull(
            sender=b.origin,
            payload_json=json.dumps({"digest": b.log.digest()}),
        ))
        assert json.loads(reply.payload_json)["entries"] == []


class TestPartitionHeal:
    def test_divergent_nodes_converge_both_ways(self, node_factory):
        a_store, a = node_factory("127.0.0.1:7001")
        b_store, b = node_factory("127.0.0.1:7002")
        # partition: each side mutates alone
        ticket_a = a_store.issue(SECRET, peer="m")
        ticket_b = b_store.issue(SECRET, peer="m")
        # B revokes A's ticket it has never seen (client carried the
        # id across the partition) — tombstone-before-grant on B
        b_store.revoke(ticket_a.ticket_id)

        pull_round(a, b)  # heal: B pulls from A, pushes its own back
        assert a.log.digest() == b.log.digest()

        for store in (a_store, b_store):
            with pytest.raises(TicketRevoked):
                store.resume(ticket_a.ticket_id)
            assert store.resume(ticket_b.ticket_id) is not None

    def test_heal_is_idempotent(self, node_factory):
        a_store, a = node_factory("127.0.0.1:7001")
        b_store, b = node_factory("127.0.0.1:7002")
        ticket = a_store.issue(SECRET, peer="m")
        for _ in range(3):
            pull_round(a, b)
        assert b.log.entries_held() == a.log.entries_held() == 1
        assert b_store.resume(ticket.ticket_id).resumed == 1


class TestHandleSurface:
    def test_digest_probe_answers_status(self, node_factory):
        a_store, a = node_factory(
            "127.0.0.1:7001", peers=["127.0.0.1:7002"]
        )
        a_store.issue(SECRET, peer="m")
        reply = a.handle(ReplDigest(sender="probe", payload_json="{}"))
        assert isinstance(reply, ReplDigest)
        document = json.loads(reply.payload_json)
        assert document["origin"] == a.origin
        assert document["entries"] == 1
        assert document["peers"] == ["127.0.0.1:7002"]
        assert document["digest"] == {a.origin: 1}

    @pytest.mark.parametrize("payload", [
        "[]",                                  # not an object
        json.dumps({"digest": {"a": -2}}),     # negative high-water
    ])
    def test_invalid_pull_payload_refused(self, node_factory, payload):
        _, a = node_factory("127.0.0.1:7001")
        reply = a.handle(ReplPull(sender="x", payload_json=payload))
        assert isinstance(reply, ErrorFrame)
        assert reply.code == "replication_invalid"

    def test_push_without_entry_list_refused(self, node_factory):
        _, a = node_factory("127.0.0.1:7001")
        reply = a.handle(ReplPush(sender="x", payload_json="{}"))
        assert isinstance(reply, ErrorFrame)
        assert reply.code == "replication_invalid"

    def test_tampered_entries_are_dropped_not_fatal(self, node_factory):
        a_store, a = node_factory("127.0.0.1:7001")
        b_store, b = node_factory("127.0.0.1:7002")
        ticket = b_store.issue(SECRET, peer="m")
        docs = [e.to_doc() for e in b.log.missing_for({})]
        forged = dict(docs[0])
        forged["ticket_id"] = "f" * 32  # id no longer matches content
        reply = a.handle(ReplPush(
            sender=b.origin,
            payload_json=json.dumps({"entries": [forged, docs[0]]}),
        ))
        assert isinstance(reply, ReplDigest)  # batch survived
        assert a_store.peek(ticket.ticket_id) is not None
        assert a_store.peek("f" * 32) is None


class TestFrontEndDispatch:
    class _BareFrontEnd:
        name = "bare"
        replicator = None

        def __init__(self):
            self.metrics = MetricsRegistry()

    def test_non_replicating_front_end_refuses(self):
        front_end = self._BareFrontEnd()
        reply = answer_replication(
            front_end, ReplDigest(sender="probe", payload_json="{}")
        )
        assert isinstance(reply, ErrorFrame)
        assert reply.code == "replication_disabled"
        counters = front_end.metrics.snapshot()["counters"]
        assert counters['replica.requests{outcome="disabled"}'] == 1

    def test_replicating_front_end_delegates(self, node_factory):
        _, a = node_factory("127.0.0.1:7001")
        front_end = self._BareFrontEnd()
        front_end.replicator = a
        reply = answer_replication(
            front_end, ReplDigest(sender="probe", payload_json="{}")
        )
        assert isinstance(reply, ReplDigest)
