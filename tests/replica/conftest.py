"""Fixtures for ticket-replication tests.

A replicating fleet mirrors the cluster fixtures (tiny untrained
bundle, pinned seeds, real sockets) but every backend carries a
:class:`Replicator`; peers are wired after start so each backend knows
the others' bound addresses (direct mesh, no gateway required)."""

import numpy as np
import pytest

from repro.access.store import KeyStore
from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.net import WaveKeyTCPServer
from repro.replica import Replicator
from repro.service import ServiceConfig, WaveKeyAccessServer
from repro.utils.bits import BitSequence

from tests.net.conftest import fixed_acquire


@pytest.fixture(scope="module")
def tiny_bundle():
    return WaveKeyModelBundle(
        imu_encoder=build_imu_encoder(6, rng=0),
        rf_encoder=build_rf_encoder(6, rng=1),
        decoder=build_decoder(6, rng=2),
        n_bins=8,
        eta=0.2,
    )


class ReplicatedFleet:
    """N replicating backends in a full mesh, with kill/revive."""

    def __init__(self, bundle, n, *, anti_entropy_interval_s=0.1,
                 ticket_ttl_s=600.0):
        self.bundle = bundle
        self.anti_entropy_interval_s = anti_entropy_interval_s
        self.ticket_ttl_s = ticket_ttl_s
        self.backends = []  # (access, tcp, replicator), index-stable
        for _ in range(n):
            self.backends.append(self._spawn("127.0.0.1", 0))
        self.rewire()

    def _spawn(self, host, port):
        access = WaveKeyAccessServer(
            self.bundle,
            ServiceConfig(workers=1),
            acquire_fn=fixed_acquire,
        )
        access.start()
        seed = BitSequence.random(32, np.random.default_rng(7))
        access._imu_batcher.batch_fn = lambda items: [seed for _ in items]
        access._rf_batcher.batch_fn = lambda items: [seed for _ in items]
        store = KeyStore(ttl_s=self.ticket_ttl_s, metrics=access.metrics)
        replicator = Replicator(
            store, anti_entropy_interval_s=self.anti_entropy_interval_s
        )
        tcp = WaveKeyTCPServer(
            access, host, port, key_store=store, replicator=replicator
        )
        tcp.start()
        return access, tcp, replicator

    def rewire(self):
        """Give every live backend the full current peer list."""
        addresses = self.addresses
        for entry in self.backends:
            if entry is None:
                continue
            _, tcp, replicator = entry
            self_key = f"{tcp.address[0]}:{tcp.address[1]}"
            replicator.set_peers(
                [a for a in addresses if a != self_key]
            )

    @property
    def addresses(self):
        return [
            f"{tcp.address[0]}:{tcp.address[1]}"
            for entry in self.backends
            if entry is not None
            for _, tcp, _ in [entry]
        ]

    def store(self, index):
        return self.backends[index][1].key_store

    def kill(self, index):
        access, tcp, _ = self.backends[index]
        address = tcp.address
        tcp.stop()
        access.stop()
        self.backends[index] = None
        return address

    def revive(self, index, address):
        self.backends[index] = self._spawn(address[0], address[1])
        self.rewire()

    def close(self):
        for entry in self.backends:
            if entry is None:
                continue
            access, tcp, _ = entry
            tcp.stop()
            access.stop()


@pytest.fixture
def replicated_fleet(tiny_bundle):
    fleet = ReplicatedFleet(tiny_bundle, 3)
    yield fleet
    fleet.close()
