"""Shared fixtures.

Expensive artifacts are built once per session:

* ``mini_dataset`` — a small but real cross-modal dataset (every sample
  went through the full gesture -> sensors -> DSP pipelines).
* ``mini_bundle`` — a briefly trained model bundle over that dataset
  (enough for shape/flow tests; not a converged model).
* ``default_bundle`` — the shipped pretrained artifact; tests needing
  converged behaviour (low benign mismatch) use it and are skipped when
  the asset has not been built yet.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pretrained import has_default_bundle, load_default_bundle
from repro.core.training import JointTrainingConfig, train_wavekey_models
from repro.datasets import DatasetConfig, generate_dataset


@pytest.fixture(scope="session")
def mini_dataset():
    config = DatasetConfig(
        gestures_per_device=1,
        windows_per_gesture=4,
        gesture_active_s=4.0,
    )
    return generate_dataset(config, rng=1234)


@pytest.fixture(scope="session")
def mini_bundle(mini_dataset):
    config = JointTrainingConfig(
        latent_width=8, epochs=8, batch_size=32, learning_rate=2e-3
    )
    result = train_wavekey_models(mini_dataset, config, rng=42)
    return result.bundle


@pytest.fixture(scope="session")
def default_bundle():
    if not has_default_bundle():
        pytest.skip("pretrained bundle not built yet "
                    "(run scripts/train_default_bundle.py)")
    return load_default_bundle()


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
