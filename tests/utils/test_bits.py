"""Unit + property tests for BitSequence and the bit helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.utils.bits import (
    BitSequence,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    mismatch_rate,
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=256)


class TestConstruction:
    def test_from_list(self):
        seq = BitSequence([1, 0, 1, 1])
        assert len(seq) == 4
        assert seq.to01() == "1011"

    def test_from_ndarray(self):
        seq = BitSequence(np.array([0, 1, 0], dtype=np.uint8))
        assert seq.to01() == "010"

    def test_rejects_non_bits(self):
        with pytest.raises(ShapeError):
            BitSequence([0, 2, 1])

    def test_zeros(self):
        assert BitSequence.zeros(5).to01() == "00000"

    def test_random_is_reproducible(self):
        a = BitSequence.random(64, np.random.default_rng(3))
        b = BitSequence.random(64, np.random.default_rng(3))
        assert a == b

    def test_from_int_roundtrip(self):
        seq = BitSequence.from_int(0b1011, 6)
        assert seq.to01() == "001011"
        assert seq.to_int() == 0b1011

    def test_from_int_overflow(self):
        with pytest.raises(ShapeError):
            BitSequence.from_int(16, 4)

    def test_empty(self):
        assert len(BitSequence()) == 0
        assert BitSequence().mismatch_rate(BitSequence()) == 0.0

    def test_immutability(self):
        seq = BitSequence([1, 0])
        with pytest.raises(ValueError):
            seq.array[0] = 0


class TestOperations:
    def test_xor(self):
        a = BitSequence([1, 1, 0, 0])
        b = BitSequence([1, 0, 1, 0])
        assert (a ^ b).to01() == "0110"

    def test_xor_length_mismatch(self):
        with pytest.raises(ShapeError):
            BitSequence([1]) ^ BitSequence([1, 0])

    def test_concat_operator(self):
        assert (BitSequence([1]) + BitSequence([0, 1])).to01() == "101"

    def test_concat_many(self):
        parts = [BitSequence([1]), BitSequence([0]), BitSequence([1, 1])]
        assert parts[0].concat(*parts[1:]).to01() == "1011"

    def test_hamming_and_mismatch(self):
        a = BitSequence([1, 1, 1, 1])
        b = BitSequence([1, 0, 1, 0])
        assert a.hamming_distance(b) == 2
        assert a.mismatch_rate(b) == 0.5

    def test_slicing_returns_bitsequence(self):
        seq = BitSequence([1, 0, 1, 1, 0])
        assert isinstance(seq[1:4], BitSequence)
        assert seq[1:4].to01() == "011"

    def test_indexing_returns_int(self):
        assert BitSequence([1, 0])[0] == 1
        assert isinstance(BitSequence([1, 0])[0], int)

    def test_equality_and_hash(self):
        assert BitSequence([1, 0]) == BitSequence([1, 0])
        assert BitSequence([1, 0]) != BitSequence([1, 0, 0])
        assert hash(BitSequence([1, 0])) == hash(BitSequence([1, 0]))

    def test_popcount(self):
        assert BitSequence([1, 0, 1, 1]).popcount() == 3


class TestModuleHelpers:
    def test_hamming_distance_helper(self):
        assert hamming_distance([1, 0, 1], [0, 0, 1]) == 1

    def test_mismatch_rate_helper(self):
        assert mismatch_rate([1, 1], [0, 0]) == 1.0

    def test_bytes_to_bits_msb_first(self):
        assert bytes_to_bits(b"\x80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_bits_to_bytes_pads_tail(self):
        assert bits_to_bytes(np.array([1, 0, 1], dtype=np.uint8)) == b"\xa0"


@given(bit_lists)
def test_xor_involution(bits):
    a = BitSequence(bits)
    b = BitSequence([1 - v for v in bits])
    assert (a ^ b) ^ b == a


@given(st.binary(max_size=64))
def test_bytes_roundtrip(data):
    assert BitSequence.from_bytes(data).to_bytes() == data


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_int_roundtrip(value):
    assert bits_to_int(int_to_bits(value, 64)) == value


@given(bit_lists, bit_lists)
def test_mismatch_symmetry(a_bits, b_bits):
    n = min(len(a_bits), len(b_bits))
    if n == 0:
        return
    a = BitSequence(a_bits[:n])
    b = BitSequence(b_bits[:n])
    assert a.mismatch_rate(b) == b.mismatch_rate(a)
    assert 0.0 <= a.mismatch_rate(b) <= 1.0


@given(bit_lists)
@settings(max_examples=30)
def test_concat_preserves_content(bits):
    seq = BitSequence(bits)
    doubled = seq + seq
    assert len(doubled) == 2 * len(seq)
    assert doubled[: len(seq)] == seq
