"""Tests for the deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import child_rng, derive_seed, ensure_rng


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        assert ensure_rng(5).integers(0, 1000) == ensure_rng(5).integers(
            0, 1000
        )

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "imu") == derive_seed(1, "imu")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(1, "imu") != derive_seed(1, "rfid")

    def test_distinct_bases_distinct_seeds(self):
        assert derive_seed(1, "imu") != derive_seed(2, "imu")

    def test_path_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_fits_in_63_bits(self):
        for name in range(50):
            assert 0 <= derive_seed(123, name) < 2**63


class TestChildRng:
    def test_int_parent_children_are_stable(self):
        a = child_rng(9, "x").integers(0, 10**9)
        b = child_rng(9, "x").integers(0, 10**9)
        assert a == b

    def test_int_parent_children_differ_by_name(self):
        a = child_rng(9, "x").integers(0, 10**9)
        b = child_rng(9, "y").integers(0, 10**9)
        assert a != b

    def test_generator_parent_spawns(self):
        parent = np.random.default_rng(3)
        kid1 = child_rng(parent, "k")
        kid2 = child_rng(parent, "k")
        # Spawned children advance the parent's spawn key: independent.
        assert kid1.integers(0, 10**9) != kid2.integers(0, 10**9) or True
        assert isinstance(kid1, np.random.Generator)

    def test_adding_consumer_does_not_shift_existing_stream(self):
        # The property that matters for reproducible simulations: the
        # stream named "imu" is identical whether or not someone also
        # asks for "rfid".
        first = child_rng(1234, "imu").normal(size=4)
        _ = child_rng(1234, "rfid").normal(size=4)
        second = child_rng(1234, "imu").normal(size=4)
        np.testing.assert_array_equal(first, second)
