"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.utils.validation import (
    check_matrix,
    check_positive,
    check_probability,
    check_range,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0.0)

    def test_allow_zero(self):
        assert check_positive("x", 0.0, allow_zero=True) == 0.0

    def test_rejects_negative_with_allow_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0, allow_zero=True)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", float("inf"))


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)


class TestCheckRange:
    def test_accepts_bounds(self):
        assert check_range("r", 3, 3, 9) == 3
        assert check_range("r", 9, 3, 9) == 9

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError, match="r"):
            check_range("r", 10, 3, 9)


class TestCheckMatrix:
    def test_exact_shape(self):
        m = check_matrix("m", np.ones((4, 3)), (4, 3))
        assert m.shape == (4, 3)

    def test_wildcard_axis(self):
        assert check_matrix("m", np.ones((7, 3)), (-1, 3)).shape == (7, 3)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ShapeError):
            check_matrix("m", np.ones(4), (4, 1))

    def test_rejects_wrong_axis(self):
        with pytest.raises(ShapeError, match="axis 1"):
            check_matrix("m", np.ones((4, 2)), (4, 3))

    def test_rejects_nan(self):
        bad = np.ones((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(ShapeError, match="non-finite"):
            check_matrix("m", bad, (2, 2))
