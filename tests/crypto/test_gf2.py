"""Field-axiom and vectorization tests for GF(2^m)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import GF2m
from repro.errors import ConfigurationError, CryptoError

FIELD = GF2m(8)
elements = st.integers(min_value=0, max_value=FIELD.order - 1)
nonzero = st.integers(min_value=1, max_value=FIELD.order - 1)


class TestConstruction:
    def test_supported_degrees(self):
        for m in range(3, 15):
            field = GF2m(m)
            assert field.order == 1 << m

    def test_unsupported_degree(self):
        with pytest.raises(ConfigurationError):
            GF2m(2)
        with pytest.raises(ConfigurationError):
            GF2m(15)

    def test_alpha_generates_group(self):
        field = GF2m(4)
        seen = {field.pow_alpha(i) for i in range(field.mult_order)}
        assert len(seen) == field.mult_order
        assert 0 not in seen


class TestScalarOps:
    @given(elements, nonzero)
    @settings(max_examples=100)
    def test_div_inverts_mul(self, a, b):
        assert FIELD.div(FIELD.mul(a, b), b) == a

    @given(nonzero)
    @settings(max_examples=50)
    def test_inverse(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @given(elements, elements, elements)
    @settings(max_examples=100)
    def test_mul_distributes_over_xor(self, a, b, c):
        # In characteristic 2, addition is XOR.
        left = FIELD.mul(a, b ^ c)
        right = FIELD.mul(a, b) ^ FIELD.mul(a, c)
        assert left == right

    @given(elements, elements)
    @settings(max_examples=100)
    def test_mul_commutes(self, a, b):
        assert FIELD.mul(a, b) == FIELD.mul(b, a)

    def test_zero_annihilates(self):
        assert FIELD.mul(0, 37) == 0

    def test_div_by_zero(self):
        with pytest.raises(CryptoError):
            FIELD.div(1, 0)
        with pytest.raises(CryptoError):
            FIELD.inv(0)

    def test_log_exp_roundtrip(self):
        for a in range(1, FIELD.order):
            assert FIELD.pow_alpha(FIELD.log(a)) == a


class TestVectorOps:
    def test_pow_alpha_vec_matches_scalar(self):
        exps = np.arange(-10, 300, 7)
        vec = FIELD.pow_alpha_vec(exps)
        for e, v in zip(exps, vec):
            assert FIELD.pow_alpha(int(e)) == int(v)

    def test_poly_eval_at_alpha_powers_matches_horner(self):
        rng = np.random.default_rng(0)
        coeffs = rng.integers(0, FIELD.order, size=6)
        powers = np.arange(0, 40, 3)
        vec = FIELD.poly_eval_at_alpha_powers(coeffs, powers)
        for p, v in zip(powers, vec):
            x = FIELD.pow_alpha(int(p))
            assert FIELD.poly_eval(coeffs, x) == int(v)


class TestPolynomials:
    def test_poly_mul_known(self):
        field = GF2m(4)
        # (x + 1)(x + 1) = x^2 + 1 over GF(2) coefficients.
        out = field.poly_mul(np.array([1, 1]), np.array([1, 1]))
        np.testing.assert_array_equal(out, [1, 0, 1])

    def test_poly_mul_degree_adds(self):
        field = GF2m(5)
        rng = np.random.default_rng(1)
        p = rng.integers(1, field.order, size=4)
        q = rng.integers(1, field.order, size=3)
        assert field.poly_mul(p, q).size == 6

    def test_poly_eval_horner(self):
        # p(x) = x^2 + 3 evaluated at alpha.
        coeffs = np.array([3, 0, 1])
        alpha = FIELD.pow_alpha(1)
        expected = FIELD.mul(alpha, alpha) ^ 3
        assert FIELD.poly_eval(coeffs, alpha) == expected
