"""Tests for hashing, KDF, and the XOR cipher."""

import pytest

from repro.crypto.hashes import (
    hash_group_element,
    hkdf_stream,
    hmac_digest,
    hmac_verify,
)
from repro.crypto.symmetric import xor_cipher
from repro.errors import CryptoError


class TestHashGroupElement:
    def test_deterministic(self):
        assert hash_group_element(12345) == hash_group_element(12345)

    def test_distinct_elements(self):
        assert hash_group_element(1) != hash_group_element(2)

    def test_context_separation(self):
        assert hash_group_element(7, b"a") != hash_group_element(7, b"b")

    def test_output_length(self):
        assert len(hash_group_element(99)) == 32

    def test_rejects_negative(self):
        with pytest.raises(CryptoError):
            hash_group_element(-1)


class TestHkdfStream:
    def test_length(self):
        assert len(hkdf_stream(b"key", 100)) == 100
        assert hkdf_stream(b"key", 0) == b""

    def test_prefix_property(self):
        long = hkdf_stream(b"key", 100)
        short = hkdf_stream(b"key", 40)
        assert long[:40] == short

    def test_context_separation(self):
        assert hkdf_stream(b"key", 32, b"x") != hkdf_stream(b"key", 32, b"y")

    def test_negative_length(self):
        with pytest.raises(CryptoError):
            hkdf_stream(b"key", -1)


class TestHkdfDomainSeparation:
    """Property sweeps: keystreams under distinct contexts must never
    share a prefix — the access layer derives every working key from
    one secret and relies on this for key independence."""

    # All fixed-length (16-byte) contexts used by repro.access.records,
    # plus the empty default used by the OT pad.
    CONTEXTS = [
        b"",
        b"wk-access/resume",
        b"wk-access/revoke",
        b"wk-access/confrm",
        b"wk-access/enc-cs",
        b"wk-access/enc-sc",
        b"wk-access/mac-cs",
        b"wk-access/mac-sc",
    ]

    def test_distinct_contexts_distinct_prefixes(self):
        key = b"\x07" * 32
        streams = [hkdf_stream(key, 64, ctx) for ctx in self.CONTEXTS]
        for i, a in enumerate(streams):
            for b in streams[i + 1:]:
                # Not merely unequal: even the shortest prefix a caller
                # might slice off must already diverge.
                assert a[:8] != b[:8]
                assert a != b

    def test_counter_contexts_are_prefix_free(self):
        """Per-record contexts are ``struct.pack("!Q", seq)`` — every
        sequence number must yield an unrelated keystream."""
        import struct

        key = b"\xa5" * 32
        seen = set()
        for seq in list(range(64)) + [2**32, 2**63, 2**64 - 1]:
            stream = hkdf_stream(key, 48, struct.pack("!Q", seq))
            assert stream[:8] not in seen
            seen.add(stream[:8])

    def test_context_and_counter_never_alias(self):
        """A fixed-length label context can never collide with an
        8-byte counter context (different lengths, and the sweep below
        checks the outputs too)."""
        import struct

        key = b"\x3c" * 32
        label_streams = {
            hkdf_stream(key, 32, ctx) for ctx in self.CONTEXTS
        }
        for seq in range(256):
            stream = hkdf_stream(key, 32, struct.pack("!Q", seq))
            assert stream not in label_streams

    def test_distinct_keys_distinct_streams(self):
        ctx = b"wk-access/enc-cs"
        assert hkdf_stream(b"k1" * 16, 32, ctx) != hkdf_stream(
            b"k2" * 16, 32, ctx
        )


class TestHmac:
    def test_verify_roundtrip(self):
        tag = hmac_digest(b"secret", b"message")
        assert hmac_verify(b"secret", b"message", tag)

    def test_wrong_key_fails(self):
        tag = hmac_digest(b"secret", b"message")
        assert not hmac_verify(b"other", b"message", tag)

    def test_wrong_message_fails(self):
        tag = hmac_digest(b"secret", b"message")
        assert not hmac_verify(b"secret", b"other", tag)


class TestXorCipher:
    def test_involution(self):
        data = b"hello wavekey protocol"
        key = b"k" * 32
        assert xor_cipher(xor_cipher(data, key), key) == data

    def test_distinct_keys_distinct_ciphertexts(self):
        assert xor_cipher(b"data", b"key1") != xor_cipher(b"data", b"key2")

    def test_context_matters(self):
        assert xor_cipher(b"data", b"key", b"c1") != xor_cipher(
            b"data", b"key", b"c2"
        )

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            xor_cipher(b"data", b"")
