"""Tests for hashing, KDF, and the XOR cipher."""

import pytest

from repro.crypto.hashes import (
    hash_group_element,
    hkdf_stream,
    hmac_digest,
    hmac_verify,
)
from repro.crypto.symmetric import xor_cipher
from repro.errors import CryptoError


class TestHashGroupElement:
    def test_deterministic(self):
        assert hash_group_element(12345) == hash_group_element(12345)

    def test_distinct_elements(self):
        assert hash_group_element(1) != hash_group_element(2)

    def test_context_separation(self):
        assert hash_group_element(7, b"a") != hash_group_element(7, b"b")

    def test_output_length(self):
        assert len(hash_group_element(99)) == 32

    def test_rejects_negative(self):
        with pytest.raises(CryptoError):
            hash_group_element(-1)


class TestHkdfStream:
    def test_length(self):
        assert len(hkdf_stream(b"key", 100)) == 100
        assert hkdf_stream(b"key", 0) == b""

    def test_prefix_property(self):
        long = hkdf_stream(b"key", 100)
        short = hkdf_stream(b"key", 40)
        assert long[:40] == short

    def test_context_separation(self):
        assert hkdf_stream(b"key", 32, b"x") != hkdf_stream(b"key", 32, b"y")

    def test_negative_length(self):
        with pytest.raises(CryptoError):
            hkdf_stream(b"key", -1)


class TestHmac:
    def test_verify_roundtrip(self):
        tag = hmac_digest(b"secret", b"message")
        assert hmac_verify(b"secret", b"message", tag)

    def test_wrong_key_fails(self):
        tag = hmac_digest(b"secret", b"message")
        assert not hmac_verify(b"other", b"message", tag)

    def test_wrong_message_fails(self):
        tag = hmac_digest(b"secret", b"message")
        assert not hmac_verify(b"secret", b"other", tag)


class TestXorCipher:
    def test_involution(self):
        data = b"hello wavekey protocol"
        key = b"k" * 32
        assert xor_cipher(xor_cipher(data, key), key) == data

    def test_distinct_keys_distinct_ciphertexts(self):
        assert xor_cipher(b"data", b"key1") != xor_cipher(b"data", b"key2")

    def test_context_matters(self):
        assert xor_cipher(b"data", b"key", b"c1") != xor_cipher(
            b"data", b"key", b"c2"
        )

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            xor_cipher(b"data", b"")
