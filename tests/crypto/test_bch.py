"""Tests for BCH codes and the code-offset secure sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import BCHCode, SecureSketch, design_bch
from repro.errors import (
    ConfigurationError,
    DecodingError,
    KeyAgreementFailure,
)
from repro.utils.bits import BitSequence


@pytest.fixture(scope="module")
def code():
    return BCHCode(7, 5)  # n = 127, corrects 5 errors


class TestConstruction:
    def test_dimension_bookkeeping(self, code):
        assert code.n_full == 127
        assert code.k == code.length - code.n_parity
        assert code.generator[0] == 1  # monic

    def test_generator_divides_codewords(self, code):
        rng = np.random.default_rng(0)
        for _ in range(5):
            assert code.is_codeword(code.random_codeword(rng))

    def test_shortened_code(self):
        code = BCHCode(7, 3, length=80)
        assert code.length == 80
        msg = BitSequence.random(code.k, np.random.default_rng(1))
        cw = code.encode(msg)
        assert len(cw) == 80
        assert code.is_codeword(cw)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BCHCode(7, 0)
        with pytest.raises(ConfigurationError):
            BCHCode(7, 3, length=5)  # below parity
        with pytest.raises(ConfigurationError):
            BCHCode(7, 3, length=200)  # above n


class TestEncoding:
    def test_systematic(self, code):
        msg = BitSequence.random(code.k, np.random.default_rng(2))
        cw = code.encode(msg)
        assert cw[: code.k] == msg
        assert code.message_of(cw) == msg

    def test_wrong_message_length(self, code):
        with pytest.raises(ConfigurationError):
            code.encode(BitSequence.zeros(code.k + 1))

    def test_linear(self, code):
        rng = np.random.default_rng(3)
        m1 = BitSequence.random(code.k, rng)
        m2 = BitSequence.random(code.k, rng)
        cw_sum = code.encode(m1) ^ code.encode(m2)
        assert code.is_codeword(cw_sum)


class TestDecoding:
    @pytest.mark.parametrize("n_errors", [0, 1, 3, 5])
    def test_corrects_up_to_t(self, code, n_errors):
        rng = np.random.default_rng(n_errors)
        cw = code.random_codeword(rng)
        noisy = cw.array.copy()
        if n_errors:
            idx = rng.choice(len(noisy), size=n_errors, replace=False)
            noisy[idx] ^= 1
        assert code.decode(noisy) == cw

    def test_beyond_t_raises_or_miscorrects(self, code):
        rng = np.random.default_rng(9)
        cw = code.random_codeword(rng)
        noisy = cw.array.copy()
        idx = rng.choice(len(noisy), size=11, replace=False)
        noisy[idx] ^= 1
        try:
            decoded = code.decode(noisy)
            assert decoded != cw  # if it decodes, it's a different word
        except DecodingError:
            pass

    def test_shortened_decoding(self):
        code = BCHCode(8, 6, length=120)
        rng = np.random.default_rng(4)
        cw = code.random_codeword(rng)
        noisy = cw.array.copy()
        idx = rng.choice(120, size=6, replace=False)
        noisy[idx] ^= 1
        assert code.decode(noisy) == cw

    @given(st.integers(min_value=0, max_value=5), st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, n_errors, seed):
        code = BCHCode(7, 5)
        rng = np.random.default_rng(seed)
        cw = code.random_codeword(rng)
        noisy = cw.array.copy()
        if n_errors:
            idx = rng.choice(len(noisy), size=n_errors, replace=False)
            noisy[idx] ^= 1
        assert code.decode(noisy) == cw


class TestDesign:
    def test_matches_key_length(self):
        code = design_bch(288, 12)
        assert code.length == 288
        assert code.t == 12
        assert code.k >= 1

    def test_large_key(self):
        code = design_bch(2112, 88)
        assert code.length == 2112
        assert code.k > 1000

    def test_impossible_request(self):
        with pytest.raises(ConfigurationError):
            design_bch(16, 200)


class TestSecureSketch:
    def test_recover_within_tolerance(self):
        sketch_helper = SecureSketch(design_bch(288, 12))
        rng = np.random.default_rng(5)
        key = BitSequence.random(288, rng)
        public = sketch_helper.sketch(key, rng)
        noisy = key.array.copy()
        idx = rng.choice(288, size=12, replace=False)
        noisy[idx] ^= 1
        assert sketch_helper.recover(public, noisy) == key

    def test_recover_beyond_tolerance_fails(self):
        sketch_helper = SecureSketch(design_bch(288, 12))
        rng = np.random.default_rng(6)
        key = BitSequence.random(288, rng)
        public = sketch_helper.sketch(key, rng)
        random_key = BitSequence.random(288, rng)
        with pytest.raises(KeyAgreementFailure):
            sketch_helper.recover(public, random_key)

    def test_sketch_is_randomized(self):
        sketch_helper = SecureSketch(design_bch(288, 12))
        key = BitSequence.random(288, np.random.default_rng(7))
        s1 = sketch_helper.sketch(key, np.random.default_rng(1))
        s2 = sketch_helper.sketch(key, np.random.default_rng(2))
        assert s1 != s2  # fresh codeword each time

    def test_leakage_bound(self):
        sketch_helper = SecureSketch(design_bch(288, 12))
        assert sketch_helper.leakage_bits == sketch_helper.code.n_parity
        assert sketch_helper.leakage_bits < 288

    def test_length_validation(self):
        sketch_helper = SecureSketch(design_bch(288, 12))
        with pytest.raises(ConfigurationError):
            sketch_helper.sketch(BitSequence.zeros(100))
