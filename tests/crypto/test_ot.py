"""Tests for the 1-out-of-2 Oblivious Transfer (Fig. 3)."""

import numpy as np
import pytest

from repro.crypto import OTReceiver, OTSender, generate_dh_group, run_batch_ot
from repro.crypto.hashes import hash_group_element
from repro.crypto.symmetric import xor_cipher
from repro.errors import CryptoError, ProtocolError


@pytest.fixture(scope="module")
def group():
    return generate_dh_group(96, rng=13)


class TestSingleInstance:
    @pytest.mark.parametrize("choice", [0, 1])
    def test_receiver_gets_selected_secret(self, group, choice):
        sender = OTSender(group, rng=1)
        receiver = OTReceiver(group, rng=2)
        m_a = sender.announce()
        m_b = receiver.respond(m_a, choice)
        ciphertexts = sender.encrypt(m_b, b"secret-0", b"secret-1")
        assert receiver.decrypt(ciphertexts) == (
            b"secret-1" if choice else b"secret-0"
        )

    @pytest.mark.parametrize("choice", [0, 1])
    def test_unselected_secret_is_garbage(self, group, choice):
        """Decrypting the other ciphertext with the receiver's key yields
        noise, not the secret — the receiver learns exactly one."""
        sender = OTSender(group, rng=3)
        receiver = OTReceiver(group, rng=4)
        m_a = sender.announce()
        m_b = receiver.respond(m_a, choice)
        ciphertexts = sender.encrypt(m_b, b"secret-0", b"secret-1")
        key = hash_group_element(pow(m_a, receiver._b, group.prime))
        other_cipher = ciphertexts.e0 if choice else ciphertexts.e1
        other_ctx = b"ot0" if choice else b"ot1"
        leaked = xor_cipher(other_cipher, key, other_ctx)
        assert leaked != (b"secret-0" if choice else b"secret-1")

    def test_sender_view_independent_of_choice(self, group):
        """M_b is a uniformly random group element under either choice;
        the sender cannot tell which secret was picked.  (Statistical
        smoke check: both choices produce in-group elements and the maps
        are bijective re-randomizations.)"""
        sender = OTSender(group, rng=5)
        m_a = sender.announce()
        for choice in (0, 1):
            for seed in range(5):
                receiver = OTReceiver(group, rng=seed)
                m_b = receiver.respond(m_a, choice)
                assert group.contains(m_b)

    def test_encrypt_before_announce_raises(self, group):
        with pytest.raises(ProtocolError):
            OTSender(group, rng=0).encrypt(2, b"a", b"b")

    def test_decrypt_before_respond_raises(self, group):
        from repro.crypto.ot import OTCiphertexts

        with pytest.raises(ProtocolError):
            OTReceiver(group, rng=0).decrypt(OTCiphertexts(b"", b""))

    def test_bad_choice_rejected(self, group):
        sender = OTSender(group, rng=1)
        receiver = OTReceiver(group, rng=2)
        with pytest.raises(ProtocolError):
            receiver.respond(sender.announce(), 2)

    def test_unequal_secret_lengths_rejected(self, group):
        sender = OTSender(group, rng=1)
        receiver = OTReceiver(group, rng=2)
        m_b = receiver.respond(sender.announce(), 0)
        with pytest.raises(CryptoError):
            sender.encrypt(m_b, b"ab", b"abc")

    def test_out_of_group_messages_rejected(self, group):
        sender = OTSender(group, rng=1)
        sender.announce()
        with pytest.raises(ProtocolError):
            sender.encrypt(0, b"a", b"b")
        receiver = OTReceiver(group, rng=2)
        with pytest.raises(ProtocolError):
            receiver.respond(group.prime, 0)

    @pytest.mark.parametrize("bad", [0, -1, "prime", "prime_plus"])
    def test_receiver_rejects_m_a_outside_group(self, group, bad):
        """Every M_a outside [1, p) is rejected before any exponent is
        spent — a malicious sender cannot force degenerate keys."""
        m_a = {"prime": group.prime, "prime_plus": group.prime + 1}.get(
            bad, bad
        )
        receiver = OTReceiver(group, rng=1)
        with pytest.raises(ProtocolError):
            receiver.respond(m_a, 0)

    @pytest.mark.parametrize("bad", [0, -1, "prime", "prime_plus"])
    def test_sender_rejects_m_b_outside_group(self, group, bad):
        m_b = {"prime": group.prime, "prime_plus": group.prime + 1}.get(
            bad, bad
        )
        sender = OTSender(group, rng=1)
        sender.announce()
        with pytest.raises(ProtocolError):
            sender.encrypt(m_b, b"a", b"b")


class TestBatch:
    def test_batch_selects_per_choice(self, group):
        pairs = [(bytes([i]), bytes([i + 100])) for i in range(8)]
        choices = [0, 1, 1, 0, 1, 0, 0, 1]
        out = run_batch_ot(group, pairs, choices, 1, 2)
        expected = [
            pairs[i][c] for i, c in enumerate(choices)
        ]
        assert out == expected

    def test_batch_length_mismatch(self, group):
        with pytest.raises(ProtocolError):
            run_batch_ot(group, [(b"a", b"b")], [0, 1])
