"""Curve25519 tests: RFC 7748 vectors, encoding hygiene, cross-checks.

The ladder is pinned to the published test vectors (both §5.2 vectors
plus the iterated one), the Edwards arithmetic is cross-checked against
the ladder through the birational map, and the decoder's rejection
paths — non-canonical, off-curve, small-order — are exercised with
hand-built encodings.
"""

import numpy as np
import pytest

from repro.crypto.curve import (
    BASE_POINT,
    CURVE25519_GROUP,
    D,
    EdwardsComb,
    EdwardsPoint,
    L,
    P,
    SQRT_M1,
    X25519_BASE,
    clamp_scalar,
    decode_point,
    scalar_mul,
    scalar_mul_naive,
    x25519,
)
from repro.errors import ProtocolError

# RFC 7748 section 5.2, first test vector.
VECTOR_1 = (
    "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4",
    "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c",
    "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552",
)

# RFC 7748 section 5.2, second test vector.
VECTOR_2 = (
    "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d",
    "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493",
    "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957",
)

# RFC 7748 section 5.2, iterated vector: k = u = 9, then
# (k, u) <- (X25519(k, u), k), checked after 1 and 1000 rounds.
ITERATED_1 = (
    "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
)
ITERATED_1000 = (
    "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
)


class TestX25519Vectors:
    @pytest.mark.parametrize("scalar,u,expected", [VECTOR_1, VECTOR_2])
    def test_rfc7748_section_5_2(self, scalar, u, expected):
        out = x25519(bytes.fromhex(scalar), bytes.fromhex(u))
        assert out.hex() == expected

    def test_rfc7748_iterated_1000(self):
        k = u = X25519_BASE
        for i in range(1000):
            k, u = x25519(k, u), k
            if i == 0:
                assert k.hex() == ITERATED_1
        assert k.hex() == ITERATED_1000

    def test_clamping(self):
        k = clamp_scalar(bytes(range(32)))
        assert k % 8 == 0
        assert k.bit_length() == 255


class TestEdwardsArithmetic:
    def test_base_point_is_on_curve(self):
        assert BASE_POINT.is_on_curve()
        assert not BASE_POINT.is_small_order()

    def test_base_point_has_order_l(self):
        assert scalar_mul(BASE_POINT, L).is_identity()
        assert not scalar_mul(BASE_POINT, L - 1).is_identity()

    def test_add_double_negate_consistency(self):
        p2 = BASE_POINT.add(BASE_POINT)
        assert p2 == BASE_POINT.double()
        assert p2.add(BASE_POINT.negate()) == BASE_POINT
        assert BASE_POINT.add(BASE_POINT.negate()).is_identity()

    @pytest.mark.parametrize("seed", range(4))
    def test_window_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        n = int.from_bytes(bytes(rng.integers(0, 256, 32, dtype=np.uint8)),
                           "little")
        assert scalar_mul(BASE_POINT, n) == scalar_mul_naive(BASE_POINT, n)

    def test_comb_matches_variable_base(self):
        comb = EdwardsComb(BASE_POINT)
        for e in (1, 7, L - 1, 0x1234567890ABCDEF, (1 << 252) + 3):
            assert comb.power(e) == scalar_mul_naive(BASE_POINT, e)

    def test_ladder_matches_edwards_through_the_map(self):
        """X25519 on u=9 equals the Edwards scalar multiple mapped to
        Montgomery u — the two formulations implement one function."""
        rng = np.random.default_rng(5)
        for _ in range(3):
            raw = bytes(rng.integers(0, 256, 32, dtype=np.uint8))
            k = clamp_scalar(raw)
            via_ladder = int.from_bytes(x25519(raw, X25519_BASE), "little")
            via_edwards = scalar_mul(BASE_POINT, k).montgomery_u()
            assert via_ladder == via_edwards


class TestEncoding:
    def test_roundtrip(self):
        rng = np.random.default_rng(11)
        for _ in range(4):
            e = CURVE25519_GROUP.random_exponent(rng)
            point = CURVE25519_GROUP.power(e)
            data = CURVE25519_GROUP.encode_element(point)
            assert len(data) == 32
            assert CURVE25519_GROUP.decode_element(data) == point

    def test_sign_bit_distinguishes_negation(self):
        encoded = BASE_POINT.encode()
        negated = BASE_POINT.negate().encode()
        assert encoded != negated
        assert decode_point(negated) == BASE_POINT.negate()

    def test_rejects_wrong_length(self):
        for n in (0, 31, 33):
            with pytest.raises(ProtocolError):
                decode_point(bytes(n))

    def test_rejects_non_canonical_y(self):
        # y >= p is a non-canonical encoding even when y mod p is a
        # perfectly good coordinate.
        for y in (P, P + 1, (1 << 255) - 1):
            with pytest.raises(ProtocolError):
                decode_point(y.to_bytes(32, "little"))

    def test_rejects_off_curve(self):
        # y = 2 gives x^2 = 3/(4d+1), which is not a square mod p.
        with pytest.raises(ProtocolError):
            decode_point((2).to_bytes(32, "little"))

    @pytest.mark.parametrize(
        "point",
        [
            EdwardsPoint(0, 1, 1, 0),        # identity (order 1)
            EdwardsPoint(0, P - 1, 1, 0),    # order 2
            EdwardsPoint(SQRT_M1, 0, 1, 0),  # order 4
        ],
        ids=["identity", "order2", "order4"],
    )
    def test_decode_element_rejects_small_order(self, point):
        assert point.is_on_curve()
        assert point.is_small_order()
        with pytest.raises(ProtocolError):
            CURVE25519_GROUP.decode_element(point.encode())

    def test_d_and_sqrt_m1_constants(self):
        assert (SQRT_M1 * SQRT_M1) % P == P - 1
        assert (D * 121666 + 121665) % P == 0


class TestGroupInterface:
    def test_power_matches_power_naive(self):
        rng = np.random.default_rng(3)
        for _ in range(3):
            e = CURVE25519_GROUP.random_exponent(rng)
            assert CURVE25519_GROUP.power(e) == CURVE25519_GROUP.power_naive(e)

    def test_ot_key_algebra(self):
        """The sender's one-multiplication k1 fast path holds on the
        curve: exp(M_b, a) * g^{-a^2} == exp(M_b / M_a, a)."""
        G = CURVE25519_GROUP
        rng = np.random.default_rng(8)
        a, b = G.random_exponent(rng), G.random_exponent(rng)
        m_a = G.power(a)
        m_b = G.mul(m_a, G.power(b))  # receiver's choice-1 response
        fast = G.mul(G.exp(m_b, a), G.power((-a * a) % L))
        reference = G.exp(G.div(m_b, m_a), a)
        assert fast == reference
        assert reference == G.exp(m_a, b)

    def test_contains(self):
        assert CURVE25519_GROUP.contains(BASE_POINT)
        assert not CURVE25519_GROUP.contains(EdwardsPoint(0, 1, 1, 0))
        assert not CURVE25519_GROUP.contains(9)
