"""Tests for primality and DH groups."""

import pytest

from repro.crypto import (
    DHGroup,
    RFC3526_GROUP_1536,
    RFC3526_GROUP_2048,
    WAVEKEY_GROUP_512,
    generate_dh_group,
    is_probable_prime,
)
from repro.errors import CryptoError


class TestMillerRabin:
    @pytest.mark.parametrize(
        "prime", [2, 3, 5, 104729, 2**61 - 1, 2**89 - 1]
    )
    def test_accepts_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize(
        "composite",
        [1, 4, 561, 1105, 104730, (2**61 - 1) * 3, 2**62],
    )
    def test_rejects_composites(self, composite):
        assert not is_probable_prime(composite)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes that Miller-Rabin must catch.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(n)


class TestDHGroup:
    def test_rfc_groups_are_safe_primes(self):
        for group in (RFC3526_GROUP_1536, RFC3526_GROUP_2048):
            assert is_probable_prime(group.prime, rounds=10)
            assert is_probable_prime((group.prime - 1) // 2, rounds=5)

    def test_wavekey_group_is_safe_prime(self):
        assert WAVEKEY_GROUP_512.bits == 512
        assert is_probable_prime(WAVEKEY_GROUP_512.prime, rounds=10)
        assert is_probable_prime((WAVEKEY_GROUP_512.prime - 1) // 2,
                                 rounds=10)

    def test_div_is_mul_inverse(self):
        g = WAVEKEY_GROUP_512
        a, b = 123456789, 987654321
        assert g.div(g.mul(a, b), b) == a % g.prime

    def test_power(self):
        g = DHGroup(prime=23, generator=5)
        assert g.power(3) == pow(5, 3, 23)

    def test_random_exponent_in_range(self):
        g = WAVEKEY_GROUP_512
        for seed in range(20):
            e = g.random_exponent(seed)
            assert 1 <= e <= g.prime - 2

    def test_contains(self):
        g = DHGroup(prime=23, generator=5)
        assert g.contains(1) and g.contains(22)
        assert not g.contains(0) and not g.contains(23)

    def test_validation(self):
        with pytest.raises(CryptoError):
            DHGroup(prime=4, generator=2)
        with pytest.raises(CryptoError):
            DHGroup(prime=23, generator=23)


class TestGenerateGroup:
    def test_small_group_generation(self):
        g = generate_dh_group(48, rng=1)
        assert is_probable_prime(g.prime)
        assert is_probable_prime((g.prime - 1) // 2)
        assert g.prime.bit_length() >= 47

    def test_deterministic(self):
        assert generate_dh_group(32, rng=7).prime == generate_dh_group(
            32, rng=7
        ).prime

    def test_rejects_tiny(self):
        with pytest.raises(CryptoError):
            generate_dh_group(8)
