"""Tests for primality and DH groups."""

import math

import pytest

from repro.crypto import (
    DHGroup,
    FixedBaseComb,
    RFC3526_GROUP_1536,
    RFC3526_GROUP_2048,
    WAVEKEY_GROUP_512,
    generate_dh_group,
    is_probable_prime,
)
from repro.errors import CryptoError


class TestMillerRabin:
    @pytest.mark.parametrize(
        "prime", [2, 3, 5, 104729, 2**61 - 1, 2**89 - 1]
    )
    def test_accepts_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize(
        "composite",
        [1, 4, 561, 1105, 104730, (2**61 - 1) * 3, 2**62],
    )
    def test_rejects_composites(self, composite):
        assert not is_probable_prime(composite)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes that Miller-Rabin must catch.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(n)


class TestDHGroup:
    def test_rfc_groups_are_safe_primes(self):
        for group in (RFC3526_GROUP_1536, RFC3526_GROUP_2048):
            assert is_probable_prime(group.prime, rounds=10)
            assert is_probable_prime((group.prime - 1) // 2, rounds=5)

    def test_wavekey_group_is_safe_prime(self):
        assert WAVEKEY_GROUP_512.bits == 512
        assert is_probable_prime(WAVEKEY_GROUP_512.prime, rounds=10)
        assert is_probable_prime((WAVEKEY_GROUP_512.prime - 1) // 2,
                                 rounds=10)

    def test_div_is_mul_inverse(self):
        g = WAVEKEY_GROUP_512
        a, b = 123456789, 987654321
        assert g.div(g.mul(a, b), b) == a % g.prime

    def test_power(self):
        g = DHGroup(prime=23, generator=5)
        assert g.power(3) == pow(5, 3, 23)

    def test_random_exponent_in_range(self):
        g = WAVEKEY_GROUP_512
        for seed in range(20):
            e = g.random_exponent(seed)
            assert 1 <= e <= g.prime - 2

    def test_contains(self):
        g = DHGroup(prime=23, generator=5)
        assert g.contains(1) and g.contains(22)
        assert not g.contains(0) and not g.contains(23)

    def test_validation(self):
        with pytest.raises(CryptoError):
            DHGroup(prime=4, generator=2)
        with pytest.raises(CryptoError):
            DHGroup(prime=23, generator=23)


class TestFixedBaseComb:
    """The comb fast path must be bit-exact with built-in ``pow``."""

    def test_cross_check_against_pow(self):
        g = WAVEKEY_GROUP_512
        comb = g.comb()
        for seed in range(25):
            e = g.with_exponent_bits(None).random_exponent(seed)
            assert comb.power(e) == pow(g.generator, e, g.prime)

    def test_boundary_exponents(self):
        g = WAVEKEY_GROUP_512
        comb = g.comb()
        for e in (0, 1, 2, g.prime - 2, g.prime - 1, g.prime):
            assert comb.power(e) == pow(g.generator, e, g.prime)

    def test_out_of_table_exponents_fall_back(self):
        comb = FixedBaseComb(5, 23, max_exponent_bits=8)
        # Negative and oversized exponents bypass the table entirely.
        assert comb.power(-3) == pow(5, -3, 23)
        assert comb.power(1 << 40) == pow(5, 1 << 40, 23)

    def test_window_sizes_agree(self):
        g = generate_dh_group(96, rng=21)
        e = g.with_exponent_bits(None).random_exponent(5)
        expected = pow(g.generator, e, g.prime)
        for window in (1, 4, 6, 8):
            assert g.comb(window).power(e) == expected

    def test_table_size_knob(self):
        comb = FixedBaseComb(4, WAVEKEY_GROUP_512.prime, window=6)
        assert comb.entries == math.ceil(512 / 6) * 64

    def test_validation(self):
        with pytest.raises(CryptoError):
            FixedBaseComb(0, 23)
        with pytest.raises(CryptoError):
            FixedBaseComb(5, 23, window=0)
        with pytest.raises(CryptoError):
            FixedBaseComb(5, 23, window=17)

    def test_group_power_routes_through_comb(self):
        g = generate_dh_group(96, rng=22)
        for seed in range(5):
            e = g.random_exponent(seed)
            assert g.power(e) == g.power_naive(e)

    def test_comb_for_arbitrary_base(self):
        g = generate_dh_group(96, rng=23)
        base = g.power(12345)
        comb = g.comb_for(base)
        e = g.random_exponent(9)
        assert comb.power(e) == pow(base, e, g.prime)


class TestGroupPolicy:
    def test_with_comb_clone_is_value_equal(self):
        naive = WAVEKEY_GROUP_512.with_comb(False)
        assert naive == WAVEKEY_GROUP_512
        assert hash(naive) == hash(WAVEKEY_GROUP_512)
        assert not naive.comb_enabled and WAVEKEY_GROUP_512.comb_enabled

    def test_with_comb_window_validation(self):
        with pytest.raises(CryptoError):
            WAVEKEY_GROUP_512.with_comb(window=0)

    def test_exponent_bits_policy(self):
        assert WAVEKEY_GROUP_512.exponent_bits == 256
        full = WAVEKEY_GROUP_512.with_exponent_bits(None)
        assert full.exponent_bits is None
        for seed in range(10):
            e = WAVEKEY_GROUP_512.random_exponent(seed)
            assert 1 <= e < (1 << 256)

    def test_exponent_bits_validation(self):
        with pytest.raises(CryptoError):
            WAVEKEY_GROUP_512.with_exponent_bits(32)
        # Full-width-or-wider "short" exponents coerce to None.
        assert WAVEKEY_GROUP_512.with_exponent_bits(
            4096
        ).exponent_bits is None


class TestGenerateGroup:
    def test_small_group_generation(self):
        g = generate_dh_group(48, rng=1)
        assert is_probable_prime(g.prime)
        assert is_probable_prime((g.prime - 1) // 2)
        assert g.prime.bit_length() >= 47

    def test_deterministic(self):
        assert generate_dh_group(32, rng=7).prime == generate_dh_group(
            32, rng=7
        ).prime

    def test_rejects_tiny(self):
        with pytest.raises(CryptoError):
            generate_dh_group(8)
