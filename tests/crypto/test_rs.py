"""Tests for Reed-Solomon codes and the segment-level secure sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import RSCode, SegmentSecureSketch
from repro.errors import (
    ConfigurationError,
    DecodingError,
    KeyAgreementFailure,
)
from repro.utils.bits import BitSequence


@pytest.fixture(scope="module")
def code():
    return RSCode(8, 36, 4)  # GF(256), 36 symbols, corrects 4


class TestRSConstruction:
    def test_dimensions(self, code):
        assert code.n == 36
        assert code.k == 28
        assert code.generator.size == 9  # degree 2t = 8, monic

    def test_generator_roots(self, code):
        for i in range(1, 9):
            alpha_i = code.field.pow_alpha(i)
            assert code.field.poly_eval(code.generator, alpha_i) == 0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RSCode(8, 36, 0)
        with pytest.raises(ConfigurationError):
            RSCode(8, 36, 18)  # k = 0
        with pytest.raises(ConfigurationError):
            RSCode(4, 36, 2)  # n > 2^4 - 1


class TestRSEncoding:
    def test_systematic(self, code):
        rng = np.random.default_rng(0)
        msg = rng.integers(0, 256, size=code.k)
        cw = code.encode(msg)
        np.testing.assert_array_equal(cw[: code.k], msg)
        np.testing.assert_array_equal(code.message_of(cw), msg)
        assert code.is_codeword(cw)

    def test_linear(self, code):
        rng = np.random.default_rng(1)
        c1 = code.random_codeword(rng)
        c2 = code.random_codeword(rng)
        assert code.is_codeword(c1 ^ c2)

    def test_bad_message(self, code):
        with pytest.raises(ConfigurationError):
            code.encode(np.zeros(code.k + 1, dtype=int))
        with pytest.raises(ConfigurationError):
            code.encode(np.full(code.k, 300))


class TestRSDecoding:
    @pytest.mark.parametrize("n_errors", [0, 1, 2, 4])
    def test_corrects_symbol_errors(self, code, n_errors):
        rng = np.random.default_rng(n_errors + 10)
        cw = code.random_codeword(rng)
        noisy = cw.copy()
        if n_errors:
            positions = rng.choice(code.n, size=n_errors, replace=False)
            for p in positions:
                noisy[p] ^= rng.integers(1, 256)
        np.testing.assert_array_equal(code.decode(noisy), cw)

    def test_beyond_radius_fails(self, code):
        rng = np.random.default_rng(20)
        cw = code.random_codeword(rng)
        noisy = cw.copy()
        positions = rng.choice(code.n, size=9, replace=False)
        for p in positions:
            noisy[p] ^= rng.integers(1, 256)
        with pytest.raises(DecodingError):
            code.decode(noisy)

    @given(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, n_errors, seed):
        code = RSCode(8, 36, 4)
        rng = np.random.default_rng(seed)
        cw = code.random_codeword(rng)
        noisy = cw.copy()
        if n_errors:
            positions = rng.choice(code.n, size=n_errors, replace=False)
            for p in positions:
                noisy[p] ^= rng.integers(1, 256)
        np.testing.assert_array_equal(code.decode(noisy), cw)


class TestSegmentSketch:
    def make(self, n_segments=36, segment_bits=8, t=4):
        return SegmentSecureSketch(n_segments, segment_bits, t)

    def corrupt_segments(self, key, sketch_obj, n, rng):
        noisy = key.array.copy().reshape(
            sketch_obj.n_segments, sketch_obj.segment_bits
        )
        segments = rng.choice(sketch_obj.n_segments, size=n, replace=False)
        for s in segments:
            replacement = rng.integers(
                0, 2, size=sketch_obj.segment_bits, dtype=np.uint8
            )
            while np.array_equal(replacement, noisy[s]):
                replacement = rng.integers(
                    0, 2, size=sketch_obj.segment_bits, dtype=np.uint8
                )
            noisy[s] = replacement
        return BitSequence(noisy.reshape(-1))

    @pytest.mark.parametrize("n_bad", [0, 1, 4])
    def test_recovers_within_tolerance(self, n_bad):
        sketch_obj = self.make()
        rng = np.random.default_rng(n_bad)
        key = BitSequence.random(sketch_obj.n_bits, rng)
        public = sketch_obj.sketch(key, rng)
        noisy = self.corrupt_segments(key, sketch_obj, n_bad, rng)
        assert sketch_obj.recover(public, noisy) == key

    def test_beyond_tolerance_fails(self):
        sketch_obj = self.make()
        rng = np.random.default_rng(5)
        key = BitSequence.random(sketch_obj.n_bits, rng)
        public = sketch_obj.sketch(key, rng)
        noisy = self.corrupt_segments(key, sketch_obj, 12, rng)
        with pytest.raises(KeyAgreementFailure):
            sketch_obj.recover(public, noisy)

    def test_wide_segments_interleave(self):
        # 58-bit segments (the 2048-bit key case) -> 8 GF(256) chunks.
        sketch_obj = self.make(n_segments=36, segment_bits=58, t=4)
        assert sketch_obj.n_chunks == 8
        rng = np.random.default_rng(6)
        key = BitSequence.random(sketch_obj.n_bits, rng)
        public = sketch_obj.sketch(key, rng)
        noisy = self.corrupt_segments(key, sketch_obj, 4, rng)
        assert sketch_obj.recover(public, noisy) == key

    def test_sketch_randomized(self):
        sketch_obj = self.make()
        key = BitSequence.random(sketch_obj.n_bits, np.random.default_rng(7))
        s1 = sketch_obj.sketch(key, np.random.default_rng(1))
        s2 = sketch_obj.sketch(key, np.random.default_rng(2))
        assert s1 != s2

    def test_leakage_below_key_length(self):
        sketch_obj = self.make(36, 8, 4)
        assert sketch_obj.leakage_bits < sketch_obj.n_bits

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentSecureSketch(2, 8, 1)
        with pytest.raises(ConfigurationError):
            SegmentSecureSketch(36, 8, 18)
        with pytest.raises(ConfigurationError):
            SegmentSecureSketch(300, 8, 4)
        sketch_obj = self.make()
        with pytest.raises(ConfigurationError):
            sketch_obj.sketch(BitSequence.zeros(10))
