"""Tests for the keystream XOR cipher (big-int fast path)."""

import time

import pytest

from repro.crypto.hashes import hkdf_stream
from repro.crypto.symmetric import xor_cipher
from repro.errors import CryptoError


def xor_cipher_bytewise(data: bytes, key: bytes, context: bytes = b"") -> bytes:
    """The original byte-by-byte reference the fast path must match."""
    stream = hkdf_stream(key, len(data), context)
    return bytes(a ^ b for a, b in zip(data, stream))


class TestXorCipher:
    def test_involution(self):
        data = b"the quick brown fox"
        assert xor_cipher(xor_cipher(data, b"k", b"c"), b"k", b"c") == data

    def test_matches_bytewise_reference(self):
        for n in (0, 1, 2, 31, 32, 33, 1024):
            data = bytes(range(256)) * (n // 256 + 1)
            data = data[:n]
            assert xor_cipher(data, b"key", b"ctx") == xor_cipher_bytewise(
                data, b"key", b"ctx"
            )

    def test_leading_zero_bytes_preserved(self):
        """int round-trips drop leading zeros unless the length is pinned."""
        data = b"\x00\x00\x00payload"
        out = xor_cipher(data, b"k")
        assert len(out) == len(data)
        assert xor_cipher(out, b"k") == data

    def test_empty_data(self):
        assert xor_cipher(b"", b"key") == b""

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            xor_cipher(b"data", b"")

    def test_large_payload_beats_bytewise_loop(self):
        """The C-level big-int XOR must not lose to the Python loop on a
        large payload (generous bound: it is typically ~10x faster, but
        shared-CI noise gets headroom)."""
        data = bytes(range(256)) * 1024  # 256 KiB
        start = time.perf_counter()
        fast = xor_cipher(data, b"key")
        fast_s = time.perf_counter() - start
        start = time.perf_counter()
        reference = xor_cipher_bytewise(data, b"key")
        loop_s = time.perf_counter() - start
        assert fast == reference
        assert fast_s < loop_s * 1.5
