"""Group-generic OT stack: both groups behind one interface.

The OT sender/receiver, batch helpers, and warm-material pool are
written against :class:`repro.crypto.group.Group`; these tests run the
same scenarios over the MODP group and Curve25519 and pin the
cross-group key-separation property of the hash.
"""

import numpy as np
import pytest

from repro.crypto import (
    CURVE25519_GROUP,
    OTMaterialPool,
    WAVEKEY_GROUP_512,
    generate_dh_group,
    hash_group_element,
    resolve_group,
    run_batch_ot,
)
from repro.crypto.group import GROUP_CHOICES, Group
from repro.crypto.pool import sender_k1_factor
from repro.errors import ConfigurationError, ProtocolError
from repro.obs.metrics import MetricsRegistry

SMALL_MODP = generate_dh_group(96, rng=13)
GROUPS = [SMALL_MODP, CURVE25519_GROUP]
GROUP_IDS = ["modp", "curve25519"]


class TestResolveGroup:
    def test_choices(self):
        assert set(GROUP_CHOICES) == {"modp512", "curve25519"}

    def test_resolves_names(self):
        assert resolve_group("modp512") is WAVEKEY_GROUP_512
        assert resolve_group("wavekey-512") is WAVEKEY_GROUP_512
        assert resolve_group("curve25519") is CURVE25519_GROUP

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_group("p256")

    def test_both_implement_group(self):
        assert isinstance(WAVEKEY_GROUP_512, Group)
        assert isinstance(CURVE25519_GROUP, Group)


class TestKeySeparation:
    def test_group_id_separates_identical_bytes(self):
        """The same encoded bytes under different group ids must derive
        unrelated keys — a cross-group confusion attack yields nothing."""
        element = bytes(range(32))
        k_modp = hash_group_element(element, group_id="wavekey-512")
        k_curve = hash_group_element(element, group_id="curve25519")
        k_plain = hash_group_element(element)
        assert len({k_modp, k_curve, k_plain}) == 3

    def test_empty_group_id_keeps_historical_digest(self):
        # The MODP fast path hashed ints directly before groups grew
        # ids; an empty id must reproduce that exact digest.
        assert hash_group_element(12345) == hash_group_element(
            12345, group_id=""
        )

    def test_hash_element_binds_the_group(self):
        rng = np.random.default_rng(2)
        e = SMALL_MODP.random_exponent(rng)
        direct = hash_group_element(
            SMALL_MODP.encode_element(SMALL_MODP.power(e)),
            group_id=SMALL_MODP.name,
        )
        assert SMALL_MODP.hash_element(SMALL_MODP.power(e)) == direct


@pytest.mark.parametrize("group", GROUPS, ids=GROUP_IDS)
class TestGenericOT:
    def test_batch_ot_transfers_choices(self, group):
        pairs = [(bytes([i]), bytes([i + 100])) for i in range(6)]
        choices = [1, 0, 1, 1, 0, 0]
        out = run_batch_ot(group, pairs, choices, 1, 2)
        assert out == [pairs[i][c] for i, c in enumerate(choices)]

    def test_pooled_batch_ot(self, group):
        pool = OTMaterialPool(depth=8, rng=7, metrics=MetricsRegistry())
        pool.register(group)
        pool.fill()
        pairs = [(bytes([i]), bytes([i + 50])) for i in range(4)]
        choices = [0, 1, 0, 1]
        out = run_batch_ot(group, pairs, choices, 3, 4, pool=pool)
        assert out == [pairs[i][c] for i, c in enumerate(choices)]
        counters = pool.metrics.snapshot()["counters"]
        key = f'crypto.pool.hit{{group="{group.name}",kind="sender"}}'
        assert counters[key] == 4

    def test_k1_factor_matches_reference(self, group):
        """g^{-a^2} == M_a^{-a} in either group."""
        rng = np.random.default_rng(21)
        for _ in range(3):
            a = group.random_exponent(rng)
            m_a = group.power(a)
            factor = sender_k1_factor(group, a)
            assert factor == group.exp(m_a, -a)

    def test_encode_decode_roundtrip(self, group):
        rng = np.random.default_rng(5)
        element = group.power(group.random_exponent(rng))
        data = group.encode_element(element)
        assert isinstance(data, bytes)
        assert group.decode_element(data) == element

    def test_decode_rejects_garbage(self, group):
        with pytest.raises(ProtocolError):
            group.decode_element(b"")
