"""Tests for the warm OT material pool."""

import time

import pytest

from repro.crypto import (
    OTMaterialPool,
    OTReceiver,
    OTSender,
    generate_dh_group,
    run_batch_ot,
)
from repro.crypto.pool import sender_k1_factor
from repro.errors import ConfigurationError, CryptoError
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def group():
    return generate_dh_group(96, rng=13)


@pytest.fixture(scope="module")
def other_group():
    return generate_dh_group(96, rng=14)


def make_pool(depth=8, **kwargs):
    kwargs.setdefault("rng", 7)
    kwargs.setdefault("metrics", MetricsRegistry())
    return OTMaterialPool(depth=depth, **kwargs)


class TestStocks:
    def test_fill_reaches_depth(self, group):
        pool = make_pool(depth=8)
        pool.register(group)
        produced = pool.fill()
        assert produced == 16  # 8 sender + 8 receiver
        assert pool.depths(group) == (8, 8)

    def test_take_pops_and_reports_shortfall(self, group):
        pool = make_pool(depth=4)
        pool.register(group)
        pool.fill()
        assert len(pool.take_senders(group, 3)) == 3
        # Only 1 left: a take of 3 returns 1 and counts 2 misses.
        taken = pool.take_senders(group, 3)
        assert len(taken) == 1
        counters = pool.metrics.snapshot()["counters"]
        key = 'crypto.pool.{}{{group="random-96",kind="sender"}}'
        assert counters[key.format("hit")] == 4
        assert counters[key.format("miss")] == 2

    def test_empty_pool_take_is_graceful(self, group):
        pool = make_pool(depth=4)
        assert pool.take_senders(group, 5) == []
        assert pool.take_receivers(group, 5) == []

    def test_refill_thread_tops_up_after_drain(self, group):
        pool = make_pool(depth=6, refill_interval_s=0.01)
        pool.register(group)
        with pool:
            deadline = 5.0
            end = time.monotonic() + deadline
            while pool.depths(group) != (6, 6):
                if time.monotonic() > end:
                    pytest.fail("refill thread never reached depth")
                time.sleep(0.01)
            pool.take_senders(group, 6)
            end = time.monotonic() + deadline
            while pool.depths(group)[0] < 6:
                if time.monotonic() > end:
                    pytest.fail("refill thread never recovered the drain")
                time.sleep(0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OTMaterialPool(depth=0)
        with pytest.raises(ConfigurationError):
            OTMaterialPool(depth=4, low_watermark=4)
        with pytest.raises(ConfigurationError):
            OTMaterialPool(depth=4, refill_interval_s=0)


class TestSingleUse:
    def test_sender_material_reuse_raises(self, group):
        """Regression: one (a, M_a) tuple must never key two sessions."""
        pool = make_pool(depth=2)
        pool.register(group)
        pool.fill()
        (material,) = pool.take_senders(group, 1)
        OTSender(group, rng=1).announce(material)
        with pytest.raises(CryptoError):
            OTSender(group, rng=2).announce(material)

    def test_receiver_material_reuse_raises(self, group):
        pool = make_pool(depth=2)
        pool.register(group)
        pool.fill()
        (material,) = pool.take_receivers(group, 1)
        sender = OTSender(group, rng=1)
        m_a = sender.announce()
        OTReceiver(group, rng=2).respond(m_a, 0, material)
        with pytest.raises(CryptoError):
            OTReceiver(group, rng=3).respond(m_a, 1, material)

    def test_cross_group_material_rejected(self, group, other_group):
        pool = make_pool(depth=2)
        pool.register(group)
        pool.fill()
        (material,) = pool.take_senders(group, 1)
        with pytest.raises(CryptoError):
            OTSender(other_group, rng=1).announce(material)


class TestCorrectness:
    def test_k1_factor_matches_reference(self, group):
        """g^{-a^2} really is M_a^{-a}: the one-multiplication second
        key equals the reference (M_b / M_a)^a."""
        p = group.prime
        for seed in range(5):
            a = group.random_exponent(seed)
            m_a = group.power(a)
            factor = sender_k1_factor(group, a)
            assert factor == pow(pow(m_a, -1, p), a, p)

    def test_pooled_batch_matches_choices(self, group):
        pool = make_pool(depth=16)
        pool.register(group)
        pool.fill()
        pairs = [(bytes([i]), bytes([i + 100])) for i in range(8)]
        choices = [0, 1, 1, 0, 1, 0, 0, 1]
        out = run_batch_ot(group, pairs, choices, 1, 2, pool=pool)
        assert out == [pairs[i][c] for i, c in enumerate(choices)]

    def test_exhausted_pool_still_correct(self, group):
        """More instances than stock: the shortfall computes inline and
        every instance still transfers the selected secret."""
        pool = make_pool(depth=2)
        pool.register(group)
        pool.fill()
        pairs = [(bytes([i]), bytes([i + 100])) for i in range(6)]
        choices = [1, 0, 1, 1, 0, 0]
        out = run_batch_ot(group, pairs, choices, 3, 4, pool=pool)
        assert out == [pairs[i][c] for i, c in enumerate(choices)]
        counters = pool.metrics.snapshot()["counters"]
        key = 'crypto.pool.miss{{group="random-96",kind="{}"}}'
        assert counters[key.format("sender")] == 4
        assert counters[key.format("receiver")] == 4
