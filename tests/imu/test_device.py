"""Tests for the mobile-device IMU suite."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gesture import default_volunteers, sample_gesture
from repro.imu import IMURecord, MobileIMU, default_mobile_devices


@pytest.fixture(scope="module")
def record():
    trajectory = sample_gesture(default_volunteers()[0], rng=31)
    device = MobileIMU(default_mobile_devices()[0])
    return device.record_gesture(trajectory, rng=32)


class TestDefaults:
    def test_paper_roster(self):
        names = [d.name for d in default_mobile_devices()]
        assert names == [
            "pixel-8", "galaxy-s5-a", "galaxy-s5-b", "galaxy-watch",
        ]

    def test_rates_near_100hz(self):
        for device in default_mobile_devices():
            assert 90 <= device.sample_rate_hz <= 110


class TestRecordGesture:
    def test_covers_full_timeline(self, record):
        assert record.duration_s > 3.0

    def test_rate_estimation(self, record):
        assert record.nominal_rate_hz == pytest.approx(104.0, rel=0.02)

    def test_timestamps_monotonic(self, record):
        assert np.all(np.diff(record.timestamps_s) >= 0)

    def test_gravity_visible_in_pause(self, record):
        # During the pause the accelerometer magnitude is ~g.
        pause = record.accelerometer[:40]
        norms = np.linalg.norm(pause, axis=1)
        assert abs(norms.mean() - 9.81) < 0.3

    def test_gesture_visible_as_variance_jump(self, record):
        early = record.accelerometer[:40].std(axis=0).max()
        late = record.accelerometer[120:240].std(axis=0).max()
        assert late > 10 * early

    def test_reproducible(self):
        trajectory = sample_gesture(default_volunteers()[1], rng=5)
        device = MobileIMU(default_mobile_devices()[1])
        a = device.record_gesture(trajectory, rng=6)
        b = device.record_gesture(trajectory, rng=6)
        np.testing.assert_array_equal(a.accelerometer, b.accelerometer)

    def test_record_shape_validation(self):
        with pytest.raises(SimulationError):
            IMURecord(
                device="x",
                timestamps_s=np.zeros(5),
                accelerometer=np.zeros((4, 3)),
                gyroscope=np.zeros((5, 3)),
                magnetometer=np.zeros((5, 3)),
            )
