"""Tests for the individual IMU sensor models."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gesture import rotation_from_rotvec
from repro.imu import (
    GRAVITY_WORLD,
    MAGNETIC_FIELD_WORLD,
    AccelerometerModel,
    GyroscopeModel,
    MagnetometerModel,
)


class TestAccelerometer:
    def test_at_rest_reads_gravity_reaction(self):
        model = AccelerometerModel(noise_std=0.0, bias_std=0.0)
        rot = np.eye(3)[None]
        out = model.measure(np.zeros((1, 3)), rot, rng=0)
        np.testing.assert_allclose(out[0], -GRAVITY_WORLD, atol=1e-12)

    def test_rotated_rest_reads_rotated_gravity(self):
        model = AccelerometerModel(noise_std=0.0, bias_std=0.0)
        r = rotation_from_rotvec(np.array([np.pi / 2, 0.0, 0.0]))
        out = model.measure(np.zeros((1, 3)), r[None], rng=0)
        np.testing.assert_allclose(out[0], r.T @ (-GRAVITY_WORLD),
                                   atol=1e-12)

    def test_linear_acceleration_adds(self):
        model = AccelerometerModel(noise_std=0.0, bias_std=0.0)
        accel = np.array([[1.0, 2.0, 3.0]])
        out = model.measure(accel, np.eye(3)[None], rng=0)
        np.testing.assert_allclose(out[0], accel[0] - GRAVITY_WORLD)

    def test_noise_statistics(self):
        model = AccelerometerModel(noise_std=0.05, bias_std=0.0)
        n = 5000
        out = model.measure(
            np.zeros((n, 3)), np.broadcast_to(np.eye(3), (n, 3, 3)), rng=1,
            bias=np.zeros(3),
        )
        residual = out + GRAVITY_WORLD
        assert abs(residual.std() - 0.05) < 0.005

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            AccelerometerModel().measure(np.zeros((2, 3)), np.eye(3)[None])


class TestGyroscope:
    def test_measures_rate_plus_bias(self):
        model = GyroscopeModel(noise_std=0.0, bias_std=0.0, drift_rate=0.0)
        omega = np.tile([0.1, -0.2, 0.3], (5, 1))
        out = model.measure(omega, dt=0.01, rng=0, bias=np.array([0.01, 0, 0]))
        np.testing.assert_allclose(out[:, 0], 0.11, atol=1e-12)
        np.testing.assert_allclose(out[:, 1], -0.2, atol=1e-12)

    def test_drift_grows_with_time(self):
        model = GyroscopeModel(noise_std=0.0, bias_std=0.0, drift_rate=0.01)
        out = model.measure(np.zeros((2000, 3)), dt=0.01, rng=2,
                            bias=np.zeros(3))
        early = np.abs(out[:100]).mean()
        late = np.abs(out[-100:]).mean()
        assert late > early

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            GyroscopeModel().measure(np.zeros(3), dt=0.01)


class TestMagnetometer:
    def test_reads_rotated_field(self):
        model = MagnetometerModel(noise_std=0.0, hard_iron_std=0.0)
        r = rotation_from_rotvec(np.array([0.0, 0.0, np.pi / 2]))
        out = model.measure(r[None], rng=0, hard_iron=np.zeros(3))
        np.testing.assert_allclose(
            out[0], r.T @ MAGNETIC_FIELD_WORLD, atol=1e-12
        )

    def test_hard_iron_offset_constant(self):
        model = MagnetometerModel(noise_std=0.0)
        rots = np.broadcast_to(np.eye(3), (10, 3, 3))
        out = model.measure(rots, rng=3)
        # Same offset on every sample -> zero variance.
        assert out.std(axis=0).max() < 1e-12
