"""Tests for the IMU calibration pipeline (SIV-B.2)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gesture import default_volunteers, sample_gesture
from repro.imu import (
    CalibrationConfig,
    MobileIMU,
    calibrate_imu_record,
    default_mobile_devices,
    detect_motion_onset,
)


@pytest.fixture(scope="module")
def gesture_and_record():
    trajectory = sample_gesture(default_volunteers()[0], rng=41,
                                active_s=4.0)
    device = MobileIMU(default_mobile_devices()[3])
    return trajectory, device.record_gesture(trajectory, rng=42)


class TestDetectMotionOnset:
    def test_finds_step_in_variance(self):
        rng = np.random.default_rng(0)
        quiet = rng.normal(0, 0.01, 300)
        loud = rng.normal(0, 1.0, 300)
        signal = np.concatenate([quiet, loud])
        onset = detect_motion_onset(signal, rate_hz=100)
        assert 280 <= onset <= 330

    def test_no_onset_raises(self):
        rng = np.random.default_rng(1)
        signal = rng.normal(0, 0.01, 600)
        with pytest.raises(SimulationError):
            detect_motion_onset(signal, rate_hz=100)

    def test_short_signal_raises(self):
        with pytest.raises(SimulationError):
            detect_motion_onset(np.zeros(10), rate_hz=100)

    def test_min_std_floor_prevents_numerical_triggers(self):
        # A perfectly silent baseline followed by a tiny wiggle must not
        # trigger when min_std dominates.
        signal = np.zeros(600)
        signal[400:] = 1e-6
        with pytest.raises(SimulationError):
            detect_motion_onset(signal, rate_hz=100, min_std=0.01)


class TestCalibrateImuRecord:
    def test_output_shape(self, gesture_and_record):
        _, record = gesture_and_record
        a = calibrate_imu_record(record)
        assert a.shape == (200, 3)

    def test_recovers_true_acceleration(self, gesture_and_record):
        """The calibrated accelerations track the ground-truth world-frame
        linear accelerations (sensor-grade: correlation > 0.85)."""
        trajectory, record = gesture_and_record
        a = calibrate_imu_record(record)
        t = trajectory.motion_onset_s + np.arange(200) / 100.0
        truth = trajectory.acceleration(t)
        for axis in range(3):
            corr = np.corrcoef(a[:, axis], truth[:, axis])[0, 1]
            assert corr > 0.85, f"axis {axis} correlation {corr:.3f}"

    def test_gravity_removed(self, gesture_and_record):
        _, record = gesture_and_record
        a = calibrate_imu_record(record)
        # World-frame linear acceleration averages near zero over the
        # gesture (the hand returns roughly to where it started).
        assert np.abs(a.mean(axis=0)).max() < 2.0

    def test_offset_window_shifts_content(self, gesture_and_record):
        _, record = gesture_and_record
        a0 = calibrate_imu_record(record, offset_s=0.0)
        a1 = calibrate_imu_record(record, offset_s=0.5)
        assert np.abs(a0 - a1).max() > 0.5
        # The shifted window overlaps the unshifted one by 1.5 s.
        np.testing.assert_allclose(
            a0[50:200], a1[0:150], atol=1.5
        )

    def test_negative_offset_rejected(self, gesture_and_record):
        _, record = gesture_and_record
        with pytest.raises(SimulationError):
            calibrate_imu_record(record, offset_s=-0.1)

    def test_offset_beyond_record_rejected(self, gesture_and_record):
        _, record = gesture_and_record
        with pytest.raises(SimulationError):
            calibrate_imu_record(record, offset_s=10.0)

    def test_config_sample_count(self):
        config = CalibrationConfig(target_rate_hz=50.0, window_s=2.0)
        assert config.n_samples == 100
