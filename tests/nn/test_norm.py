"""Tests for BatchNorm1d — the quantizer depends on its statistics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import BatchNorm1d
from tests.nn.gradcheck import input_gradient_error


class TestForward:
    def test_training_normalizes_batch(self):
        bn = BatchNorm1d(3)
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(64, 3))
        out = bn.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_converge(self):
        bn = BatchNorm1d(2, momentum=0.05)
        rng = np.random.default_rng(1)
        for _ in range(400):
            bn.forward(rng.normal(3.0, 2.0, size=(128, 2)), training=True)
        np.testing.assert_allclose(bn.running_mean, 3.0, atol=0.2)
        np.testing.assert_allclose(np.sqrt(bn.running_var), 2.0, atol=0.2)

    def test_inference_uses_running_stats(self):
        bn = BatchNorm1d(1, affine=False)
        bn.running_mean[:] = 10.0
        bn.running_var[:] = 4.0
        out = bn.forward(np.array([[12.0]]))
        np.testing.assert_allclose(out, [[1.0]], atol=1e-3)

    def test_non_affine_has_no_parameters(self):
        assert BatchNorm1d(4, affine=False).parameters() == []

    def test_inference_output_near_standard_normal(self):
        # The WaveKey quantization assumption: after training on N(mu,
        # sigma) data, inference outputs are ~N(0, 1).
        bn = BatchNorm1d(4, affine=False)
        rng = np.random.default_rng(2)
        for _ in range(300):
            bn.forward(rng.normal(-2.0, 5.0, size=(64, 4)), training=True)
        fresh = rng.normal(-2.0, 5.0, size=(4096, 4))
        out = bn.forward(fresh)
        assert np.abs(out.mean(axis=0)).max() < 0.1
        assert np.abs(out.std(axis=0) - 1.0).max() < 0.1

    def test_training_needs_two_samples(self):
        with pytest.raises(ShapeError):
            BatchNorm1d(2).forward(np.zeros((1, 2)), training=True)

    def test_rejects_wrong_width(self):
        with pytest.raises(ShapeError):
            BatchNorm1d(2).forward(np.zeros((4, 3)))


class TestBackward:
    def test_input_gradient_affine(self):
        bn = BatchNorm1d(4)
        x = np.random.default_rng(0).normal(size=(8, 4))
        assert input_gradient_error(bn, x) < 1e-6

    def test_input_gradient_non_affine(self):
        bn = BatchNorm1d(3, affine=False)
        x = np.random.default_rng(1).normal(size=(6, 3))
        assert input_gradient_error(bn, x) < 1e-6

    def test_gamma_beta_gradients(self):
        bn = BatchNorm1d(3)
        x = np.random.default_rng(2).normal(size=(10, 3))
        out = bn.forward(x, training=True)
        grad = np.random.default_rng(3).normal(size=out.shape)
        bn.zero_grad()
        bn.backward(grad)
        x_hat, _ = bn._cache
        np.testing.assert_allclose(
            bn.gamma.grad, (grad * x_hat).sum(axis=0), atol=1e-12
        )
        np.testing.assert_allclose(
            bn.beta.grad, grad.sum(axis=0), atol=1e-12
        )


class TestStateDict:
    def test_roundtrip_includes_buffers(self):
        bn = BatchNorm1d(2, name="bn")
        bn.forward(np.random.default_rng(0).normal(size=(16, 2)),
                   training=True)
        state = bn.state_dict()
        assert "bn.running_mean" in state
        fresh = BatchNorm1d(2, name="bn")
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.running_mean, bn.running_mean)
        np.testing.assert_array_equal(fresh.running_var, bn.running_var)

    def test_missing_buffer_raises(self):
        bn = BatchNorm1d(2, name="bn")
        state = bn.state_dict()
        del state["bn.running_var"]
        with pytest.raises(ShapeError):
            BatchNorm1d(2, name="bn").load_state_dict(state)
