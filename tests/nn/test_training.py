"""Tests for the generic Trainer and the loss functions."""

import numpy as np
import pytest

from repro.errors import ShapeError, TrainingError
from repro.nn import (
    Adam,
    Dense,
    MSELoss,
    ReLU,
    Sequential,
    SumSquaredError,
    Trainer,
)


def make_regression(n=256, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    x = rng.normal(size=(n, 4))
    w = rng.normal(size=(4, 2))
    y = np.tanh(x @ w) + 0.01 * rng.normal(size=(n, 2))
    return x, y


class TestLosses:
    def test_mse_value_and_grad(self):
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        value, grad = MSELoss()(pred, target)
        assert value == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [[1.0, 2.0]])

    def test_sse_averages_over_batch_only(self):
        pred = np.ones((4, 3))
        target = np.zeros((4, 3))
        value, _ = SumSquaredError()(pred, target)
        assert value == pytest.approx(3.0)  # sum over features

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            MSELoss()(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_gradient_is_derivative(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(3, 5))
        target = rng.normal(size=(3, 5))
        value, grad = SumSquaredError()(pred, target)
        eps = 1e-6
        probe = pred.copy()
        probe[1, 2] += eps
        value2, _ = SumSquaredError()(probe, target)
        assert (value2 - value) / eps == pytest.approx(grad[1, 2], rel=1e-4)


class TestTrainer:
    def test_loss_decreases(self):
        x, y = make_regression()
        model = Sequential(Dense(4, 16, rng=1), ReLU(), Dense(16, 2, rng=2))
        trainer = Trainer(
            model, MSELoss(), Adam(model.parameters(), lr=1e-2),
            batch_size=32, rng=3,
        )
        history = trainer.fit(x, y, epochs=30)
        assert history.final_train_loss < history.train_loss[0] * 0.2

    def test_validation_history(self):
        x, y = make_regression(128)
        model = Sequential(Dense(4, 8, rng=1), ReLU(), Dense(8, 2, rng=2))
        trainer = Trainer(
            model, MSELoss(), Adam(model.parameters(), lr=1e-2), rng=3
        )
        history = trainer.fit(
            x[:100], y[:100], epochs=5, x_val=x[100:], y_val=y[100:]
        )
        assert len(history.val_loss) == 5
        assert history.best_val_loss == min(history.val_loss)

    def test_sample_count_mismatch(self):
        model = Sequential(Dense(4, 2, rng=0))
        trainer = Trainer(model, MSELoss(), Adam(model.parameters()))
        with pytest.raises(TrainingError):
            trainer.fit(np.zeros((3, 4)), np.zeros((4, 2)), epochs=1)

    def test_empty_dataset_raises(self):
        model = Sequential(Dense(4, 2, rng=0))
        trainer = Trainer(model, MSELoss(), Adam(model.parameters()))
        with pytest.raises(TrainingError):
            trainer.fit(np.zeros((0, 4)), np.zeros((0, 2)), epochs=1)

    def test_evaluate_runs_inference(self):
        x, y = make_regression(64)
        model = Sequential(Dense(4, 2, rng=0))
        trainer = Trainer(model, MSELoss(), Adam(model.parameters()))
        loss = trainer.evaluate(x, y)
        assert np.isfinite(loss)

    def test_history_empty_raises(self):
        from repro.nn.training import TrainingHistory

        with pytest.raises(TrainingError):
            _ = TrainingHistory().final_train_loss
