"""Tests for Dense, ReLU, Flatten, Reshape, Parameter."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Dense, Flatten, ReLU
from repro.nn.layers import Parameter, Reshape
from tests.nn.gradcheck import input_gradient_error, parameter_gradient_error


class TestParameter:
    def test_grad_buffer_matches_shape(self):
        p = Parameter(np.ones((2, 3)), name="w")
        assert p.grad.shape == (2, 3)
        assert not p.grad.any()

    def test_zero_grad(self):
        p = Parameter(np.ones(4))
        p.grad += 2.0
        p.zero_grad()
        assert not p.grad.any()


class TestDense:
    def test_forward_shape(self):
        layer = Dense(5, 3, rng=0)
        out = layer.forward(np.zeros((7, 5)))
        assert out.shape == (7, 3)

    def test_forward_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            Dense(5, 3, rng=0).forward(np.zeros((7, 4)))

    def test_bias_applied(self):
        layer = Dense(2, 2, rng=0)
        layer.weight.data[:] = 0.0
        layer.bias.data[:] = [1.0, -1.0]
        out = layer.forward(np.zeros((1, 2)))
        np.testing.assert_allclose(out, [[1.0, -1.0]])

    def test_input_gradient(self):
        layer = Dense(4, 3, rng=1)
        err = input_gradient_error(
            layer, np.random.default_rng(2).normal(size=(3, 4))
        )
        assert err < 1e-7

    def test_parameter_gradients(self):
        layer = Dense(4, 3, rng=1)
        err = parameter_gradient_error(
            layer, np.random.default_rng(2).normal(size=(3, 4))
        )
        assert err < 1e-7

    def test_backward_without_forward_raises(self):
        with pytest.raises(ShapeError):
            Dense(2, 2, rng=0).backward(np.zeros((1, 2)))

    def test_inference_forward_does_not_cache(self):
        layer = Dense(2, 2, rng=0)
        layer.forward(np.zeros((1, 2)), training=False)
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 2)))


class TestReLU:
    def test_clips_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_gradient_masks(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_numeric_gradient(self):
        # Keep values away from the kink for a clean numeric check.
        x = np.random.default_rng(0).normal(size=(4, 6))
        x[np.abs(x) < 0.05] = 0.5
        assert input_gradient_error(ReLU(), x) < 1e-7


class TestFlattenReshape:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = layer.forward(x, training=True)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)

    def test_reshape_roundtrip(self):
        layer = Reshape((3, 4))
        x = np.arange(24, dtype=float).reshape(2, 12)
        out = layer.forward(x, training=True)
        assert out.shape == (2, 3, 4)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)

    def test_specs_roundtrip_via_names(self):
        assert Flatten(name="f").spec() == {"type": "Flatten", "name": "f"}
        assert Reshape((2, 2), name="r").spec()["target_shape"] == [2, 2]
