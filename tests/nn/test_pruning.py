"""Tests for variance-based pruning (the l_f mechanism, SVI-C.1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import (
    BatchNorm1d,
    Dense,
    Flatten,
    ReLU,
    Sequential,
    output_variances,
    prune_feature_unit,
)


def make_encoder(width=6):
    return Sequential(
        Dense(10, width, rng=0, name="fc"),
        BatchNorm1d(width, affine=False, name="bn"),
    )


class TestOutputVariances:
    def test_measures_pre_batchnorm_variance(self):
        enc = make_encoder(3)
        # Make unit 1 constant: zero weights + bias.
        enc[0].weight.data[:, 1] = 0.0
        enc[0].bias.data[1] = 0.0
        x = np.random.default_rng(0).normal(size=(128, 10))
        variances = output_variances(enc, x)
        assert variances.shape == (3,)
        assert variances[1] == pytest.approx(0.0, abs=1e-12)
        assert variances[0] > 0 and variances[2] > 0

    def test_requires_dense_bn_tail(self):
        bad = Sequential(Dense(4, 4, rng=0), ReLU())
        with pytest.raises(ConfigurationError):
            output_variances(bad, np.zeros((4, 4)))


class TestPruneFeatureUnit:
    def test_prunes_width_by_one(self):
        enc = make_encoder(5)
        prune_feature_unit(enc, 2)
        assert enc[0].out_features == 4
        assert enc[1].num_features == 4
        out = enc.forward(np.random.default_rng(0).normal(size=(8, 10)))
        assert out.shape == (8, 4)

    def test_prunes_the_right_unit(self):
        enc = make_encoder(3)
        # Tag each unit with a distinctive bias and no weights.
        enc[0].weight.data[:] = 0.0
        enc[0].bias.data[:] = [10.0, 20.0, 30.0]
        enc[1].running_mean[:] = 0.0
        enc[1].running_var[:] = 1.0
        prune_feature_unit(enc, 1)
        out = enc.forward(np.zeros((1, 10)))
        np.testing.assert_allclose(out, [[10.0, 30.0]], rtol=1e-4)

    def test_refuses_last_unit(self):
        enc = make_encoder(1)
        with pytest.raises(ConfigurationError):
            prune_feature_unit(enc, 0)

    def test_out_of_range_index(self):
        with pytest.raises(ShapeError):
            prune_feature_unit(make_encoder(3), 3)

    def test_pruned_encoder_still_trains(self):
        enc = make_encoder(4)
        prune_feature_unit(enc, 0)
        x = np.random.default_rng(1).normal(size=(16, 10))
        out = enc.forward(x, training=True)
        enc.backward(np.ones_like(out))  # must not raise

    def test_repeated_pruning_reaches_min(self):
        enc = make_encoder(6)
        for _ in range(5):
            prune_feature_unit(enc, 0)
        assert enc[0].out_features == 1
