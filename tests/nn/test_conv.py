"""Gradient and adjoint tests for the 1-D convolution layers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Conv1d, ConvTranspose1d
from repro.nn.functional import col2im1d, im2col1d
from tests.nn.gradcheck import input_gradient_error, parameter_gradient_error


class TestIm2Col:
    def test_simple_windows(self):
        x = np.arange(6, dtype=float).reshape(1, 1, 6)
        cols = im2col1d(x, kernel=3, stride=1, pad=0)
        assert cols.shape == (1, 3, 4)
        np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 2])
        np.testing.assert_array_equal(cols[0, :, 3], [3, 4, 5])

    def test_stride_and_pad(self):
        x = np.arange(4, dtype=float).reshape(1, 1, 4)
        cols = im2col1d(x, kernel=3, stride=2, pad=1)
        assert cols.shape == (1, 3, 2)
        np.testing.assert_array_equal(cols[0, :, 0], [0, 0, 1])

    def test_col2im_is_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        # property both backward passes rely on.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 10))
        cols = im2col1d(x, kernel=4, stride=2, pad=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im1d(y, x.shape, 4, 2, 1)).sum())
        assert abs(lhs - rhs) < 1e-9


class TestConv1d:
    def test_output_shape(self):
        layer = Conv1d(3, 8, 7, stride=2, padding=3, rng=0)
        out = layer.forward(np.zeros((2, 3, 200)))
        assert out.shape == (2, 8, 100)
        assert layer.output_length(200) == 100

    def test_known_convolution(self):
        layer = Conv1d(1, 1, 3, stride=1, padding=0, rng=0)
        layer.weight.data[:] = np.array([[[1.0, 0.0, -1.0]]])
        layer.bias.data[:] = 0.0
        x = np.array([[[1.0, 2.0, 4.0, 8.0]]])
        out = layer.forward(x)
        # Position t: w0*x[t] + w1*x[t+1] + w2*x[t+2].
        np.testing.assert_allclose(out, [[[1 - 4, 2 - 8]]])

    def test_input_gradient(self):
        layer = Conv1d(2, 3, 5, stride=2, padding=2, rng=1)
        x = np.random.default_rng(0).normal(size=(2, 2, 12))
        assert input_gradient_error(layer, x) < 1e-7

    def test_parameter_gradients(self):
        layer = Conv1d(2, 3, 5, stride=2, padding=2, rng=1)
        x = np.random.default_rng(0).normal(size=(2, 2, 12))
        assert parameter_gradient_error(layer, x) < 1e-7

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ShapeError):
            Conv1d(3, 4, 3, rng=0).forward(np.zeros((1, 2, 10)))


class TestConvTranspose1d:
    def test_output_shape_inverts_conv(self):
        conv = Conv1d(4, 8, 5, stride=2, padding=2, rng=0)
        deconv = ConvTranspose1d(8, 4, 4, stride=2, padding=1, rng=0)
        l_mid = conv.output_length(100)
        assert deconv.output_length(l_mid) == 100

    def test_input_gradient(self):
        layer = ConvTranspose1d(3, 2, 4, stride=2, padding=1, rng=2)
        x = np.random.default_rng(0).normal(size=(2, 3, 6))
        assert input_gradient_error(layer, x) < 1e-7

    def test_parameter_gradients(self):
        layer = ConvTranspose1d(3, 2, 4, stride=2, padding=1, rng=2)
        x = np.random.default_rng(0).normal(size=(2, 3, 6))
        assert parameter_gradient_error(layer, x) < 1e-7

    def test_adjoint_of_conv(self):
        # With shared weights, <conv(x), y> == <x, deconv(y)>.  The input
        # length is chosen stride-aligned ((L + 2p - k) % s == 0) so the
        # transposed map reproduces it exactly.
        rng = np.random.default_rng(3)
        conv = Conv1d(2, 3, 5, stride=2, padding=2, rng=4)
        deconv = ConvTranspose1d(3, 2, 5, stride=2, padding=2, rng=4)
        # A conv kernel (C_out, C_in, K) is the transposed layer's kernel
        # (C_in_deconv = C_out, C_out_deconv = C_in, K) verbatim.
        deconv.weight.data = conv.weight.data.copy()
        deconv.bias.data[:] = 0.0
        conv.bias.data[:] = 0.0
        length = 11
        assert (length + 2 * 2 - 5) % 2 == 0
        x = rng.normal(size=(2, 2, length))
        y = rng.normal(size=(2, 3, conv.output_length(length)))
        lhs = float((conv.forward(x) * y).sum())
        rhs = float((x * deconv.forward(y)).sum())
        assert abs(lhs - rhs) < 1e-9

    def test_rejects_bad_input(self):
        with pytest.raises(ShapeError):
            ConvTranspose1d(3, 2, 4, rng=0).forward(np.zeros((1, 2, 5)))
