"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import SGD, Adam
from repro.nn.layers import Parameter


def quadratic_step(optimizer, params, target):
    """One gradient step on sum((p - target)^2)."""
    optimizer.zero_grad()
    for p in params:
        p.grad += 2.0 * (p.data - target)
    optimizer.step()


class TestSGD:
    def test_plain_descent_converges(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, [p], 3.0)
        np.testing.assert_allclose(p.data, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        p_plain = Parameter(np.array([10.0]))
        p_momentum = Parameter(np.array([10.0]))
        plain = SGD([p_plain], lr=0.01)
        momentum = SGD([p_momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            quadratic_step(plain, [p_plain], 0.0)
            quadratic_step(momentum, [p_momentum], 0.0)
        assert abs(p_momentum.data[0]) < abs(p_plain.data[0])

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        opt.step()  # gradient zero; decay alone shrinks
        assert p.data[0] < 1.0

    def test_rejects_empty_params(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_step(opt, [p], 1.0)
        np.testing.assert_allclose(p.data, 1.0, atol=1e-3)

    def test_bias_correction_first_step_magnitude(self):
        # With bias correction the very first step is ~lr regardless of
        # gradient scale.
        for scale in (1e-3, 1.0, 1e3):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.01)
            opt.zero_grad()
            p.grad += scale
            opt.step()
            assert abs(abs(p.data[0]) - 0.01) < 1e-3

    def test_rejects_bad_betas(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.9))

    def test_rejects_bad_lr(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_state_tracks_parameters_independently(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        opt = Adam([p1, p2], lr=0.1)
        opt.zero_grad()
        p1.grad += 1.0  # only p1 has gradient
        opt.step()
        assert p1.data[0] != 1.0
        assert p2.data[0] == 1.0
