"""Tests for model save/load."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    BatchNorm1d,
    Conv1d,
    ConvTranspose1d,
    Dense,
    Flatten,
    ReLU,
    Sequential,
    load_model,
    save_model,
)
from repro.nn.layers import Reshape


def make_model():
    return Sequential(
        Conv1d(2, 4, 5, stride=2, padding=2, rng=0, name="c1"),
        ReLU(name="r1"),
        Flatten(name="f1"),
        Dense(4 * 5, 6, rng=1, name="d1"),
        BatchNorm1d(6, name="b1"),
        name="toy",
    )


class TestRoundtrip:
    def test_identical_outputs(self, tmp_path):
        model = make_model()
        x = np.random.default_rng(0).normal(size=(3, 2, 10))
        # Populate batch-norm running stats first.
        model.forward(
            np.random.default_rng(1).normal(size=(16, 2, 10)), training=True
        )
        expected = model.forward(x)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_allclose(restored.forward(x), expected, atol=1e-12)

    def test_deconv_and_reshape_roundtrip(self, tmp_path):
        model = Sequential(
            Reshape((4, 1), name="rs"),
            ConvTranspose1d(4, 2, 6, stride=2, padding=1, rng=2, name="dc"),
            name="de",
        )
        x = np.random.default_rng(3).normal(size=(2, 4))
        expected = model.forward(x)
        path = str(tmp_path / "de.npz")
        save_model(model, path)
        np.testing.assert_allclose(
            load_model(path).forward(x), expected, atol=1e-12
        )

    def test_spec_preserves_architecture(self, tmp_path):
        model = make_model()
        path = str(tmp_path / "m.npz")
        save_model(model, path)
        restored = load_model(path)
        assert [layer.spec()["type"] for layer in restored] == [
            "Conv1d", "ReLU", "Flatten", "Dense", "BatchNorm1d",
        ]

    def test_load_rejects_random_npz(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ShapeError):
            load_model(path)

    def test_load_rejects_shape_mismatch(self, tmp_path):
        model = make_model()
        path = str(tmp_path / "m.npz")
        save_model(model, path)
        state = dict(np.load(path))
        state["d1.weight"] = np.zeros((3, 3))
        np.savez(path, **state)
        with pytest.raises(ShapeError):
            load_model(path)
