"""Numeric gradient-checking helpers shared by the nn tests."""

from __future__ import annotations

import copy

import numpy as np


def input_gradient_error(layer, x: np.ndarray, eps: float = 1e-6) -> float:
    """Max abs error between analytic and numeric input gradients."""
    rng = np.random.default_rng(0)
    out = layer.forward(x, training=True)
    grad_out = rng.normal(size=out.shape)
    analytic = layer.backward(grad_out.copy())
    numeric = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        # Stateless evaluation for layers with batch statistics: deep-copy
        # so running buffers are not polluted by the probes.
        fp = (copy.deepcopy(layer).forward(xp, training=True) * grad_out).sum()
        fm = (copy.deepcopy(layer).forward(xm, training=True) * grad_out).sum()
        numeric[idx] = (fp - fm) / (2 * eps)
    return float(np.abs(numeric - analytic).max())


def parameter_gradient_error(layer, x: np.ndarray, eps: float = 1e-6) -> float:
    """Max abs error between analytic and numeric parameter gradients."""
    rng = np.random.default_rng(1)
    out = layer.forward(x, training=True)
    grad_out = rng.normal(size=out.shape)
    layer.zero_grad()
    layer.backward(grad_out.copy())
    worst = 0.0
    for p in layer.parameters():
        numeric = np.zeros_like(p.data)
        for idx in np.ndindex(*p.data.shape):
            orig = p.data[idx]
            p.data[idx] = orig + eps
            fp = (layer.forward(x, training=True) * grad_out).sum()
            p.data[idx] = orig - eps
            fm = (layer.forward(x, training=True) * grad_out).sum()
            p.data[idx] = orig
            numeric[idx] = (fp - fm) / (2 * eps)
        worst = max(worst, float(np.abs(numeric - p.grad).max()))
    return worst
