"""Tests for the Sequential container."""

import numpy as np
import pytest

from repro.nn import Dense, Flatten, ReLU, Sequential


def make_chain():
    return Sequential(
        Dense(4, 8, rng=0, name="d1"),
        ReLU(name="r"),
        Dense(8, 2, rng=1, name="d2"),
        name="chain",
    )


class TestContainer:
    def test_forward_composes(self):
        chain = make_chain()
        x = np.random.default_rng(0).normal(size=(5, 4))
        manual = chain[2].forward(
            chain[1].forward(chain[0].forward(x))
        )
        np.testing.assert_allclose(chain.forward(x), manual)

    def test_backward_chains_in_reverse(self):
        chain = make_chain()
        x = np.random.default_rng(1).normal(size=(5, 4))
        out = chain.forward(x, training=True)
        grad_in = chain.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_parameters_collects_all(self):
        chain = make_chain()
        names = {p.name for p in chain.parameters()}
        assert names == {"d1.weight", "d1.bias", "d2.weight", "d2.bias"}

    def test_add_returns_self(self):
        chain = Sequential()
        assert chain.add(Flatten()) is chain
        assert len(chain) == 1

    def test_state_dict_roundtrip(self):
        chain = make_chain()
        state = chain.state_dict()
        other = make_chain()
        # Perturb, then restore.
        for p in other.parameters():
            p.data += 1.0
        other.load_state_dict(state)
        x = np.random.default_rng(2).normal(size=(3, 4))
        np.testing.assert_allclose(other.forward(x), chain.forward(x))

    def test_iteration_and_indexing(self):
        chain = make_chain()
        assert len(list(chain)) == 3
        assert isinstance(chain[1], ReLU)

    def test_spec_nests_layers(self):
        spec = make_chain().spec()
        assert spec["type"] == "Sequential"
        assert [s["type"] for s in spec["layers"]] == [
            "Dense", "ReLU", "Dense",
        ]

    def test_zero_grad_clears_all(self):
        chain = make_chain()
        x = np.random.default_rng(3).normal(size=(4, 4))
        out = chain.forward(x, training=True)
        chain.backward(np.ones_like(out))
        assert any(p.grad.any() for p in chain.parameters())
        chain.zero_grad()
        assert not any(p.grad.any() for p in chain.parameters())
