"""KeyStore lifecycle tests: TTL, revocation, LRU, typed errors."""

import pytest

from repro.access.store import (
    DEFAULT_MAX_TICKETS,
    MAX_TOMBSTONES,
    KeyStore,
    Ticket,
    new_ticket_id,
)
from repro.errors import (
    AccessError,
    TicketExpired,
    TicketRevoked,
    TicketUnknown,
)
from repro.obs.metrics import MetricsRegistry

SECRET = b"\x11" * 32


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_store(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return KeyStore(**kwargs)


class TestIssueResume:
    def test_issue_then_resume(self):
        store = make_store(ttl_s=60.0)
        ticket = store.issue(SECRET, peer="mobile")
        assert len(ticket.ticket_id) == 32
        resumed = store.resume(ticket.ticket_id)
        assert resumed.resumed == 1
        assert resumed.resume_secret == SECRET
        assert store.resume(ticket.ticket_id).resumed == 2

    def test_ticket_ids_unguessable_length(self):
        assert new_ticket_id() != new_ticket_id()
        assert len(bytes.fromhex(new_ticket_id())) == 16

    def test_unknown_ticket(self):
        store = make_store()
        with pytest.raises(TicketUnknown):
            store.resume("deadbeef" * 4)

    def test_validation(self):
        with pytest.raises(AccessError):
            KeyStore(ttl_s=0)
        with pytest.raises(AccessError):
            KeyStore(max_tickets=0)
        store = make_store()
        with pytest.raises(AccessError):
            store.issue(SECRET, peer="m", ttl_s=-1)


class TestTTL:
    def test_expiry(self):
        clock = FakeClock()
        store = make_store(ttl_s=10.0, clock=clock)
        ticket = store.issue(SECRET, peer="mobile")
        clock.advance(9.999)
        assert store.resume(ticket.ticket_id).resumed == 1
        clock.advance(0.001)
        with pytest.raises(TicketExpired):
            store.resume(ticket.ticket_id)
        # after expiry the id is gone entirely
        with pytest.raises(TicketUnknown):
            store.resume(ticket.ticket_id)

    def test_per_ticket_ttl_override(self):
        clock = FakeClock()
        store = make_store(ttl_s=1000.0, clock=clock)
        short = store.issue(SECRET, peer="m", ttl_s=5.0)
        long = store.issue(SECRET, peer="m")
        clock.advance(6.0)
        with pytest.raises(TicketExpired):
            store.resume(short.ticket_id)
        assert store.resume(long.ticket_id).resumed == 1

    def test_purge_expired(self):
        clock = FakeClock()
        store = make_store(ttl_s=10.0, clock=clock)
        for _ in range(3):
            store.issue(SECRET, peer="m")
        clock.advance(11.0)
        survivor = store.issue(SECRET, peer="m")
        assert store.purge_expired() == 3
        assert len(store) == 1
        assert store.peek(survivor.ticket_id) is not None


class TestRevocation:
    def test_revoke_live_ticket(self):
        store = make_store()
        ticket = store.issue(SECRET, peer="mobile")
        assert store.revoke(ticket.ticket_id) is True
        with pytest.raises(TicketRevoked):
            store.resume(ticket.ticket_id)

    def test_revoked_beats_expired(self):
        clock = FakeClock()
        store = make_store(ttl_s=10.0, clock=clock)
        ticket = store.issue(SECRET, peer="m")
        store.revoke(ticket.ticket_id)
        clock.advance(100.0)
        with pytest.raises(TicketRevoked):
            store.resume(ticket.ticket_id)

    def test_revoking_unknown_id_still_tombstones(self):
        store = make_store()
        assert store.revoke("feedface" * 4) is False
        with pytest.raises(TicketRevoked):
            store.resume("feedface" * 4)

    def test_tombstone_cap(self):
        store = make_store()
        for i in range(MAX_TOMBSTONES + 10):
            store.revoke(f"{i:032x}")
        assert store.stats()["revoked"] == MAX_TOMBSTONES


class TestTombstonePruning:
    """Revoke-heavy load must not grow the tombstone set forever:
    tombstones older than the largest lifetime ever issued guard only
    expired tickets and are pruned by age (the rejection degrades from
    ``revoked`` to the equally-fatal ``unknown``)."""

    def test_aged_tombstones_pruned_under_revoke_heavy_load(self):
        from repro.obs.metrics import MetricsRegistry

        clock = FakeClock()
        metrics = MetricsRegistry()
        store = make_store(ttl_s=10.0, clock=clock, metrics=metrics)
        for i in range(500):
            store.revoke(f"{i:032x}")
            clock.advance(0.01)
        assert store.stats()["revoked"] == 500
        # once the max lifetime has elapsed, no ticket those
        # tombstones could shadow can still be live
        clock.advance(15.0)
        store.revoke("ff" * 16)
        assert store.stats()["revoked"] == 1
        counters = metrics.snapshot()["counters"]
        assert counters["access.store.tombstones_pruned"] == 500

    def test_explicit_tombstone_ttl(self):
        clock = FakeClock()
        store = make_store(
            ttl_s=1000.0, clock=clock, tombstone_ttl_s=5.0
        )
        ticket = store.issue(SECRET, peer="m")
        store.revoke(ticket.ticket_id)
        clock.advance(4.0)
        with pytest.raises(TicketRevoked):
            store.resume(ticket.ticket_id)
        clock.advance(2.0)
        store.revoke("aa" * 16)  # any revoke triggers the age sweep
        with pytest.raises(TicketUnknown):
            store.resume(ticket.ticket_id)
        assert store.stats()["revoked"] == 1
        with pytest.raises(AccessError):
            KeyStore(tombstone_ttl_s=0)

    def test_retention_tracks_longest_issued_lifetime(self):
        clock = FakeClock()
        store = make_store(ttl_s=10.0, clock=clock)
        store.issue(SECRET, peer="m", ttl_s=100.0)  # stretch retention
        store.revoke("bb" * 16)
        clock.advance(50.0)  # past ttl_s, inside the longest lifetime
        store.revoke("cc" * 16)
        assert store.stats()["revoked"] == 2, "pruned too eagerly"
        clock.advance(101.0)
        store.revoke("dd" * 16)
        assert store.stats()["revoked"] == 1

    def test_snapshot_compaction_drops_aged_tombstones(self, tmp_path):
        from repro.access.journal import TicketJournal

        clock = FakeClock()
        path = str(tmp_path / "tickets.journal")
        store = KeyStore(
            ttl_s=10.0,
            clock=clock,
            journal=TicketJournal(path, compact_after=64),
        )
        store.recover()
        for i in range(60):
            store.revoke(f"{i:032x}")
        clock.advance(20.0)
        # enough appends to cross compact_after: the snapshot written
        # by compaction must carry only unexpired tombstones
        for i in range(60, 70):
            store.revoke(f"{i:032x}")
        store.close()

        recovered = KeyStore(
            ttl_s=10.0,
            clock=clock,
            journal=TicketJournal(path, compact_after=64),
        )
        recovered.recover()
        assert recovered.stats()["revoked"] <= 10
        recovered.close()


class TestLRU:
    def test_cap_evicts_least_recently_resumed(self):
        store = make_store(max_tickets=2)
        first = store.issue(SECRET, peer="m")
        second = store.issue(SECRET, peer="m")
        # refresh `first`: now `second` is the LRU victim
        store.resume(first.ticket_id)
        third = store.issue(SECRET, peer="m")
        assert store.peek(second.ticket_id) is None
        assert store.peek(first.ticket_id) is not None
        assert store.peek(third.ticket_id) is not None
        with pytest.raises(TicketUnknown):
            store.resume(second.ticket_id)

    def test_default_cap(self):
        assert KeyStore().max_tickets == DEFAULT_MAX_TICKETS


class TestStateRoundtrip:
    def test_ticket_state_roundtrip(self):
        ticket = Ticket(
            ticket_id="ab" * 16,
            resume_secret=SECRET,
            peer="mobile-é",
            issued_at=1.5,
            expires_at=61.5,
            resumed=3,
            metadata={"session_id": "s01"},
        )
        assert Ticket.from_state(ticket.to_state()) == ticket

    def test_malformed_state_rejected(self):
        with pytest.raises(AccessError):
            Ticket.from_state({"ticket_id": "x"})


class TestMetrics:
    def test_counters_and_gauges(self):
        metrics = MetricsRegistry()
        store = make_store(metrics=metrics)
        ticket = store.issue(SECRET, peer="m")
        store.resume(ticket.ticket_id)
        store.revoke(ticket.ticket_id)
        counters = metrics.snapshot()["counters"]
        assert counters['access.store.events{event="issue"}'] == 1
        assert counters['access.store.events{event="resume"}'] == 1
        assert counters['access.store.events{event="revoke"}'] == 1
        gauges = metrics.snapshot()["gauges"]
        assert gauges["access.store.live"] == 0
        assert gauges["access.store.tombstones"] == 1
