"""Journal persistence tests: replay, torn tails, compaction, and the
store's crash-recovery contract."""

import json
import os

import pytest

from repro.access.journal import JOURNAL_VERSION, JournalCorrupt, TicketJournal
from repro.access.store import KeyStore
from repro.errors import AccessError, TicketRevoked, TicketUnknown

SECRET = b"\x22" * 32


def make_journal(tmp_path, **kwargs):
    kwargs.setdefault("compact_after", 16)
    return TicketJournal(str(tmp_path / "tickets.journal"), **kwargs)


class TestAppendReplay:
    def test_append_then_replay(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open()
        journal.append("issue", {"ticket_id": "t1"})
        journal.append("revoke", {"ticket_id": "t1", "at": 5.0})
        journal.close()

        snapshot, entries = make_journal(tmp_path).replay()
        assert snapshot is None
        assert [e["op"] for e in entries] == ["issue", "revoke"]
        assert all(e["v"] == JOURNAL_VERSION for e in entries)

    def test_append_requires_open(self, tmp_path):
        journal = make_journal(tmp_path)
        with pytest.raises(AccessError, match="not open"):
            journal.append("issue", {"ticket_id": "t"})

    def test_unknown_op_rejected(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open()
        with pytest.raises(AccessError):
            journal.append("upgrade", {})

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert make_journal(tmp_path).replay() == (None, [])

    def test_compact_after_floor(self, tmp_path):
        with pytest.raises(AccessError):
            make_journal(tmp_path, compact_after=2)


class TestCrashTolerance:
    def test_torn_final_line_dropped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open()
        journal.append("issue", {"ticket_id": "t1"})
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"v":1,"op":"rev')  # crash mid-append

        _, entries = make_journal(tmp_path).replay()
        assert [e["ticket_id"] for e in entries] == ["t1"]

    def test_damage_before_tail_raises(self, tmp_path):
        journal = make_journal(tmp_path)
        path = journal.path
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"v":1,"op":"issue","ticket_id":"t"}\n')
        with pytest.raises(JournalCorrupt):
            journal.replay()

    def test_invalid_op_line_raises(self, tmp_path):
        journal = make_journal(tmp_path)
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write('{"v":1,"op":"sideload"}\n')
            fh.write('{"v":1,"op":"issue","ticket_id":"t"}\n')
        with pytest.raises(JournalCorrupt):
            journal.replay()

    def test_corrupt_snapshot_raises(self, tmp_path):
        journal = make_journal(tmp_path)
        with open(journal.snapshot_path, "w", encoding="utf-8") as fh:
            fh.write("{broken")
        with pytest.raises(JournalCorrupt):
            journal.replay()

    def test_wrong_snapshot_version_raises(self, tmp_path):
        journal = make_journal(tmp_path)
        with open(journal.snapshot_path, "w", encoding="utf-8") as fh:
            json.dump({"v": 999, "tickets": []}, fh)
        with pytest.raises(JournalCorrupt):
            journal.replay()


class TestCompaction:
    def test_compact_snapshots_then_truncates(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open()
        for i in range(20):
            journal.append("issue", {"ticket_id": f"t{i}"})
        assert journal.needs_compaction()
        journal.compact({"tickets": [], "revoked": [["t9", 1.0]]})
        assert journal.pending_lines == 0

        snapshot, entries = make_journal(tmp_path).replay()
        assert snapshot["revoked"] == [["t9", 1.0]]
        assert entries == []

    def test_log_usable_after_compaction(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open()
        journal.compact({"tickets": [], "revoked": []})
        journal.append("issue", {"ticket_id": "after"})
        journal.close()
        snapshot, entries = make_journal(tmp_path).replay()
        assert snapshot is not None
        assert [e["ticket_id"] for e in entries] == ["after"]


class TestStoreRecovery:
    """The contract the access-smoke CI job exercises over real
    sockets, pinned here at the store level."""

    def test_live_and_revoked_survive_restart(self, tmp_path):
        journal = make_journal(tmp_path)
        store = KeyStore(ttl_s=3600.0, journal=journal)
        assert store.recover() == 0
        live = store.issue(SECRET, peer="mobile", metadata={"s": "1"})
        dead = store.issue(SECRET, peer="mobile")
        store.resume(live.ticket_id)
        store.revoke(dead.ticket_id)
        store.close()

        reborn = KeyStore(ttl_s=3600.0, journal=make_journal(tmp_path))
        assert reborn.recover() == 1
        resumed = reborn.resume(live.ticket_id)
        assert resumed.resume_secret == SECRET
        assert resumed.resumed == 2  # touch entries replayed too
        assert resumed.metadata == {"s": "1"}
        with pytest.raises(TicketRevoked):
            reborn.resume(dead.ticket_id)

    def test_eviction_survives_restart(self, tmp_path):
        store = KeyStore(
            max_tickets=1, journal=make_journal(tmp_path)
        )
        store.recover()
        evicted = store.issue(SECRET, peer="m")
        kept = store.issue(SECRET, peer="m")
        store.close()

        reborn = KeyStore(max_tickets=1, journal=make_journal(tmp_path))
        assert reborn.recover() == 1
        assert reborn.peek(kept.ticket_id) is not None
        with pytest.raises(TicketUnknown):
            reborn.resume(evicted.ticket_id)

    def test_compaction_preserves_recovery(self, tmp_path):
        store = KeyStore(journal=make_journal(tmp_path))
        store.recover()
        tickets = [store.issue(SECRET, peer="m") for _ in range(10)]
        store.revoke(tickets[0].ticket_id)
        for _ in range(5):
            store.resume(tickets[1].ticket_id)  # crosses compact_after=16
        assert store.journal.pending_lines == 0  # compaction fired
        store.close()

        reborn = KeyStore(journal=make_journal(tmp_path))
        assert reborn.recover() == 9
        with pytest.raises(TicketRevoked):
            reborn.resume(tickets[0].ticket_id)
        assert reborn.resume(tickets[1].ticket_id).resumed == 6

    def test_recover_requires_journal(self):
        with pytest.raises(AccessError):
            KeyStore().recover()
