"""Channel endpoint tests, transport-free: handshake authentication
and the op dispatcher, with the client side driven via the raw
:class:`RecordChannel` it would hold after ``complete_handshake``."""

import pytest

from repro.access.channel import (
    ClientAccessChannel,
    ServerAccessChannel,
    decode_payload,
    default_op_handler,
    encode_op,
    new_nonce,
)
from repro.access.records import derive_resume_secret
from repro.access.store import Ticket
from repro.errors import AccessError
from repro.obs.metrics import MetricsRegistry

SECRET = derive_resume_secret(b"\x33" * 32)


def make_ticket(**overrides):
    fields = dict(
        ticket_id="ab" * 16,
        resume_secret=SECRET,
        peer="mobile",
        issued_at=0.0,
        expires_at=3600.0,
        resumed=1,
    )
    fields.update(overrides)
    return Ticket(**fields)


def open_pair(handler=default_op_handler, metrics=None):
    """Server channel + the client-side RecordChannel facing it."""
    client_nonce = new_nonce()
    server, accept_frame = ServerAccessChannel.accept(
        make_ticket(), client_nonce, handler=handler, metrics=metrics
    )
    _, records = ClientAccessChannel.complete_handshake(
        SECRET, client_nonce, accept_frame
    )
    return server, records


class TestHandshake:
    def test_accept_tag_verifies(self):
        server, records = open_pair()
        assert records.role == "client"
        assert server.channel_id

    def test_wrong_secret_rejected(self):
        client_nonce = new_nonce()
        _, accept_frame = ServerAccessChannel.accept(
            make_ticket(), client_nonce
        )
        with pytest.raises(AccessError, match="tag mismatch"):
            ClientAccessChannel.complete_handshake(
                derive_resume_secret(b"\x44" * 32),
                client_nonce,
                accept_frame,
            )

    def test_wrong_client_nonce_rejected(self):
        client_nonce = new_nonce()
        _, accept_frame = ServerAccessChannel.accept(
            make_ticket(), client_nonce
        )
        with pytest.raises(AccessError, match="tag mismatch"):
            ClientAccessChannel.complete_handshake(
                SECRET, new_nonce(), accept_frame
            )

    def test_channels_get_fresh_ids_and_nonces(self):
        _, a = ServerAccessChannel.accept(make_ticket(), new_nonce())
        _, b = ServerAccessChannel.accept(make_ticket(), new_nonce())
        assert a.channel_id != b.channel_id
        assert a.server_nonce != b.server_nonce


class TestOps:
    def roundtrip(self, server, records, op, **fields):
        reply = server.handle_record(records.seal(encode_op(op, **fields)))
        return decode_payload(records.open_record(reply))

    def test_query(self):
        server, records = open_pair()
        result = self.roundtrip(server, records, "query", target="door")
        assert result == {
            "ok": True, "peer": "mobile", "target": "door",
            "allowed": True, "resumed": 1,
        }

    def test_open_actuates(self):
        server, records = open_pair()
        result = self.roundtrip(server, records, "open", target="lab")
        assert result["ok"] and result["opened"]
        assert result["target"] == "lab"

    def test_ping(self):
        server, records = open_pair()
        assert self.roundtrip(server, records, "ping")["pong"] is True

    def test_unknown_op(self):
        server, records = open_pair()
        result = self.roundtrip(server, records, "levitate")
        assert result["ok"] is False

    def test_bye_finishes_channel(self):
        server, records = open_pair()
        assert server.handle_record(records.seal(encode_op("bye"))) is None
        assert server.finished

    def test_custom_handler(self):
        def handler(payload, ticket):
            return {"ok": True, "echo": payload.get("x"), "who": ticket.peer}

        server, records = open_pair(handler=handler)
        result = self.roundtrip(server, records, "query", x=42)
        assert result == {"ok": True, "echo": 42, "who": "mobile"}

    def test_ops_metrics(self):
        metrics = MetricsRegistry()
        server, records = open_pair(metrics=metrics)
        self.roundtrip(server, records, "query")
        self.roundtrip(server, records, "nonsense")
        counters = metrics.snapshot()["counters"]
        assert counters['access.ops{op="query",role="server"}'] == 1
        assert counters['access.ops{op="unknown",role="server"}'] == 1
        assert server.ops_served == 2


class TestPayloadCodec:
    def test_encode_decode_roundtrip(self):
        payload = decode_payload(encode_op("query", target="dóor", n=3))
        assert payload == {"op": "query", "target": "dóor", "n": 3}

    def test_malformed_json_rejected(self):
        with pytest.raises(AccessError, match="malformed"):
            decode_payload(b"\xff\xfe not json")

    def test_non_object_rejected(self):
        with pytest.raises(AccessError, match="JSON object"):
            decode_payload(b"[1, 2]")
