"""Record-layer tests: key schedule, sealing, strict sequencing.

Everything here is transport-free — two :class:`RecordChannel`
endpoints sharing derived keys, with adversarial records injected
directly.
"""

import struct

import pytest

from repro.access.records import (
    CLIENT,
    SERVER,
    KEY_BYTES,
    MAX_RECORD_PLAINTEXT,
    RecordChannel,
    confirm_tag,
    derive_channel_keys,
    derive_resume_secret,
    derive_revocation_key,
    revocation_tag,
    verify_revocation_tag,
)
from repro.errors import AccessError, ConfigurationError, RecordRejected
from repro.net.codec import RecordFrame

AGREED = b"\x42" * 32
C_NONCE = bytes(range(16))
S_NONCE = bytes(reversed(range(16)))


def channel_pair(agreed=AGREED, c_nonce=C_NONCE, s_nonce=S_NONCE):
    secret = derive_resume_secret(agreed)
    keys = derive_channel_keys(secret, c_nonce, s_nonce)
    return RecordChannel(keys, CLIENT), RecordChannel(keys, SERVER)


class TestKeySchedule:
    def test_resume_secret_deterministic_and_distinct(self):
        assert derive_resume_secret(AGREED) == derive_resume_secret(AGREED)
        assert derive_resume_secret(AGREED) != derive_resume_secret(
            b"\x43" * 32
        )
        assert len(derive_resume_secret(AGREED)) == KEY_BYTES

    def test_resume_secret_differs_from_agreed_key(self):
        assert derive_resume_secret(AGREED) != AGREED

    def test_short_key_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_resume_secret(b"short")

    def test_all_working_keys_distinct(self):
        secret = derive_resume_secret(AGREED)
        keys = derive_channel_keys(secret, C_NONCE, S_NONCE)
        material = {
            keys.enc_c2s, keys.enc_s2c, keys.mac_c2s, keys.mac_s2c,
            keys.confirm, secret, derive_revocation_key(secret),
        }
        assert len(material) == 7

    def test_nonces_freshen_keys(self):
        secret = derive_resume_secret(AGREED)
        a = derive_channel_keys(secret, C_NONCE, S_NONCE)
        b = derive_channel_keys(secret, bytes(16), S_NONCE)
        c = derive_channel_keys(secret, C_NONCE, bytes(16))
        assert a.enc_c2s != b.enc_c2s
        assert a.enc_c2s != c.enc_c2s

    def test_short_nonce_rejected(self):
        secret = derive_resume_secret(AGREED)
        with pytest.raises(ConfigurationError):
            derive_channel_keys(secret, b"\x00" * 7, S_NONCE)

    def test_confirm_tag_binds_every_input(self):
        secret = derive_resume_secret(AGREED)
        keys = derive_channel_keys(secret, C_NONCE, S_NONCE)
        base = confirm_tag(keys, "chan", C_NONCE, S_NONCE)
        assert base != confirm_tag(keys, "chan2", C_NONCE, S_NONCE)
        assert base != confirm_tag(keys, "chan", S_NONCE, C_NONCE)

    def test_revocation_tag_roundtrip(self):
        secret = derive_resume_secret(AGREED)
        tag = revocation_tag(secret, "t1")
        assert verify_revocation_tag(secret, "t1", tag)
        assert not verify_revocation_tag(secret, "t2", tag)
        assert not verify_revocation_tag(
            derive_resume_secret(b"\x43" * 32), "t1", tag
        )


class TestSealOpen:
    def test_roundtrip_both_directions(self):
        client, server = channel_pair()
        assert server.open_record(client.seal(b"hello")) == b"hello"
        assert client.open_record(server.seal(b"world")) == b"world"

    def test_ciphertext_hides_plaintext(self):
        client, _ = channel_pair()
        record = client.seal(b"secret payload")
        assert b"secret" not in record.ciphertext

    def test_empty_plaintext(self):
        client, server = channel_pair()
        assert server.open_record(client.seal(b"")) == b""

    def test_sequence_advances(self):
        client, server = channel_pair()
        for i in range(5):
            record = client.seal(f"msg{i}".encode())
            assert record.seq == i
            assert server.open_record(record) == f"msg{i}".encode()
        assert client.send_seq == 5
        assert server.recv_seq == 5

    def test_same_plaintext_distinct_ciphertexts(self):
        """Per-record keystreams: repeated plaintexts never leak
        equality on the wire."""
        client, _ = channel_pair()
        a = client.seal(b"open the door")
        b = client.seal(b"open the door")
        assert a.ciphertext != b.ciphertext

    def test_oversized_plaintext_rejected(self):
        client, _ = channel_pair()
        with pytest.raises(AccessError):
            client.seal(b"\x00" * (MAX_RECORD_PLAINTEXT + 1))

    def test_unknown_role_rejected(self):
        secret = derive_resume_secret(AGREED)
        keys = derive_channel_keys(secret, C_NONCE, S_NONCE)
        with pytest.raises(ConfigurationError):
            RecordChannel(keys, "observer")


class TestRejection:
    def test_replay_poisons_channel(self):
        client, server = channel_pair()
        record = client.seal(b"once")
        server.open_record(record)
        with pytest.raises(RecordRejected, match="replayed"):
            server.open_record(record)
        assert server.poisoned
        with pytest.raises(AccessError, match="poisoned"):
            server.open_record(client.seal(b"after"))

    def test_gap_rejected(self):
        client, server = channel_pair()
        client.seal(b"skipped")
        with pytest.raises(RecordRejected, match="gapped"):
            server.open_record(client.seal(b"second"))

    def test_reorder_rejected(self):
        client, server = channel_pair()
        first = client.seal(b"first")
        second = client.seal(b"second")
        with pytest.raises(RecordRejected, match="gapped"):
            server.open_record(second)
        del first

    def test_tampered_ciphertext_rejected(self):
        client, server = channel_pair()
        record = client.seal(b"genuine")
        forged = RecordFrame(
            seq=record.seq,
            ciphertext=bytes([record.ciphertext[0] ^ 1])
            + record.ciphertext[1:],
            tag=record.tag,
        )
        with pytest.raises(RecordRejected, match="authentication"):
            server.open_record(forged)
        assert server.poisoned

    def test_tampered_seq_rejected_by_mac(self):
        """The tag covers the sequence number: renumbering a captured
        record fails authentication, not merely the counter check."""
        client, server = channel_pair()
        record = client.seal(b"genuine")
        forged = RecordFrame(
            seq=record.seq + 1, ciphertext=record.ciphertext, tag=record.tag
        )
        with pytest.raises(RecordRejected, match="authentication"):
            server.open_record(forged)

    def test_reflection_rejected(self):
        """A client record bounced back at the client fails: the
        directions use distinct MAC keys."""
        client, _ = channel_pair()
        record = client.seal(b"to server")
        with pytest.raises(RecordRejected, match="authentication"):
            client.open_record(record)

    def test_cross_resumption_isolation(self):
        """Records from one resumption never verify in another — the
        nonces freshen the keys."""
        client_a, _ = channel_pair(s_nonce=b"\x01" * 16)
        _, server_b = channel_pair(s_nonce=b"\x02" * 16)
        with pytest.raises(RecordRejected, match="authentication"):
            server_b.open_record(client_a.seal(b"stale session"))

    def test_poisoned_channel_refuses_to_seal(self):
        client, server = channel_pair()
        record = client.seal(b"x")
        server.open_record(record)
        with pytest.raises(RecordRejected):
            server.open_record(record)
        with pytest.raises(AccessError, match="poisoned"):
            server.seal(b"reply")


class TestKeystreamStructure:
    def test_per_record_context_is_the_sequence_number(self):
        """Pin the layout: record ``seq`` feeds hkdf as an 8-byte
        big-endian context, so keystreams across records are the
        prefix-free family tested in tests/crypto/test_hashes.py."""
        from repro.crypto.hashes import hkdf_stream

        client, _ = channel_pair()
        plaintext = b"\x00" * 24
        record = client.seal(plaintext)
        expected = hkdf_stream(
            client._enc_send, len(plaintext), struct.pack("!Q", record.seq)
        )
        assert record.ciphertext == expected  # XOR with zero plaintext
