"""Tests for random-guessing and gesture-mimicry attacks."""

import numpy as np
import pytest

from repro.attacks import GestureMimicryAttack, RandomGuessAttack
from repro.attacks.base import AttackOutcome, AttackTrial
from repro.core import KeySeedPipeline
from repro.errors import ConfigurationError
from repro.gesture import default_volunteers, sample_gesture
from repro.imu import default_mobile_devices
from repro.rfid import default_environments, default_tags
from repro.utils.bits import BitSequence


class TestAttackOutcome:
    def test_success_rate(self):
        outcome = AttackOutcome(attack="x")
        outcome.add(AttackTrial(succeeded=True, mismatch_rate=0.0))
        outcome.add(AttackTrial(succeeded=False, mismatch_rate=0.4))
        assert outcome.success_rate == 0.5
        assert outcome.mismatch_rates() == [0.0, 0.4]

    def test_empty_outcome_rejected(self):
        with pytest.raises(ConfigurationError):
            _ = AttackOutcome(attack="x").success_rate


class TestRandomGuessAttack:
    def test_analytic_matches_eq4(self):
        attack = RandomGuessAttack(eta=0.1)
        # floor(0.1 * 20) = 2: (1 + 20 + 190) / 2^20.
        assert attack.analytic_success(20) == pytest.approx(
            211 / 2**20
        )

    def test_monte_carlo_close_to_analytic_small_seed(self):
        """With a deliberately tiny seed the Eq. 4 probability is large
        enough to verify by simulation."""
        attack = RandomGuessAttack(eta=0.25)  # radius 3 of 12
        rng = np.random.default_rng(0)
        victims = [BitSequence.random(12, rng) for _ in range(20)]
        outcome = attack.run(victims, guesses_per_victim=400, rng=1)
        analytic = attack.analytic_success(12)
        assert outcome.n_trials == 8000
        assert outcome.success_rate == pytest.approx(analytic, rel=0.25)

    def test_realistic_seed_never_guessed(self):
        attack = RandomGuessAttack(eta=0.12)
        rng = np.random.default_rng(2)
        victims = [BitSequence.random(36, rng) for _ in range(5)]
        outcome = attack.run(victims, guesses_per_victim=200, rng=3)
        # Analytic ~ 2e-7; 1000 trials should all fail.
        assert outcome.n_successes == 0


class TestGestureMimicryAttack:
    @pytest.fixture(scope="class")
    def attack(self, mini_bundle):
        return GestureMimicryAttack(
            pipeline=KeySeedPipeline(mini_bundle),
            eta=0.1,
            device=default_mobile_devices()[0],
            tag=default_tags()[0],
            environment=default_environments()[0],
        )

    def test_attacker_seed_differs_from_victim(self, attack):
        victims = default_volunteers()[:1]
        trajectory = sample_gesture(victims[0], rng=1)
        victim_seed = attack.victim_server_seed(trajectory, rng=2)
        attacker_seed = attack.attacker_seed(
            trajectory, default_volunteers()[1], rng=3
        )
        assert attacker_seed.mismatch_rate(victim_seed) > 0.1

    def test_campaign_structure(self, attack):
        outcome = attack.run(
            victims=default_volunteers()[:2],
            imitators=default_volunteers()[:3],
            gestures_per_victim=2,
            rng=4,
        )
        # 2 victims x 2 gestures x 2 imitators (victim excluded).
        assert outcome.n_trials == 8
        assert all(
            t.mismatch_rate is None or 0 <= t.mismatch_rate <= 1
            for t in outcome.trials
        )

    def test_mimicry_worse_than_benign(self, attack, mini_bundle,
                                       mini_dataset):
        """Even the mini model separates the true cross-modal pair from a
        mimicked one on average."""
        pipeline = KeySeedPipeline(mini_bundle)
        benign = pipeline.seed_mismatch_rates(
            mini_dataset.a_matrices(), mini_dataset.r_matrices()
        ).mean()
        outcome = attack.run(
            victims=default_volunteers()[:2],
            gestures_per_victim=2,
            rng=5,
        )
        rates = outcome.mismatch_rates()
        assert np.mean(rates) > benign
