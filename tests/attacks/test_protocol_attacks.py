"""Tests for eavesdropping, MitM, and signal-spoofing attacks."""

import numpy as np
import pytest

from repro.attacks import Eavesdropper, MitmAttacker, SignalSpoofingAttack
from repro.core import KeySeedPipeline
from repro.crypto import generate_dh_group
from repro.gesture import default_volunteers
from repro.imu import default_mobile_devices
from repro.protocol import (
    KeyAgreementConfig,
    SimulatedTransport,
    run_key_agreement,
)
from repro.rfid import default_environments, default_tags
from repro.utils.bits import BitSequence

TEST_GROUP = generate_dh_group(96, rng=88)


def make_config(**kwargs):
    defaults = dict(key_length_bits=128, eta=0.1, group=TEST_GROUP)
    defaults.update(kwargs)
    return KeyAgreementConfig(**defaults)


def matching_seeds(length=36, seed=0):
    s = BitSequence.random(length, np.random.default_rng(seed))
    return s, s


class TestEavesdropper:
    def test_transcript_complete_and_benign_run_unaffected(self):
        eve = Eavesdropper(group=TEST_GROUP)
        transport = SimulatedTransport(taps=[eve.tap])
        s_m, s_r = matching_seeds()
        outcome = run_key_agreement(
            s_m, s_r, make_config(), transport=transport, rng=1
        )
        assert outcome.success
        # 2x announce, 2x response, 2x ciphertexts, challenge, confirm.
        assert eve.n_messages == 8
        types = eve.observed_message_types()
        assert types.count("OTAnnounce") == 2
        assert types.count("ReconciliationChallenge") == 1

    def test_key_recovery_attempt_yields_garbage(self):
        eve = Eavesdropper(group=TEST_GROUP)
        transport = SimulatedTransport(taps=[eve.tap])
        s_m, s_r = matching_seeds(seed=3)
        config = make_config()
        outcome = run_key_agreement(
            s_m, s_r, config, transport=transport, rng=2
        )
        assert outcome.success
        forged = eve.attempt_key_recovery(
            segment_bits=config.segment_bits(36), rng=4
        )
        assert forged is not None
        # Compare against the halves of the real key material: the
        # recovered bits behave like coin flips.
        real = outcome.mobile_key
        overlap = min(len(real), len(forged))
        rate = forged[:overlap].mismatch_rate(real[:overlap])
        assert 0.25 < rate < 0.75

    def test_sketch_is_observed_but_insufficient(self):
        eve = Eavesdropper(group=TEST_GROUP)
        transport = SimulatedTransport(taps=[eve.tap])
        s_m, s_r = matching_seeds(seed=5)
        run_key_agreement(s_m, s_r, make_config(), transport=transport,
                          rng=6)
        assert eve.observed_sketch is not None
        assert len(eve.observed_sketch) > 0


class TestMitm:
    @pytest.mark.parametrize(
        "strategy", ["substitute_ciphertexts", "substitute_announce"]
    )
    def test_active_substitution_breaks_agreement(self, strategy):
        mitm = MitmAttacker(group=TEST_GROUP, strategy=strategy, rng=1)
        transport = SimulatedTransport(interceptor=mitm.intercept)
        s_m, s_r = matching_seeds(seed=7)
        outcome = run_key_agreement(
            s_m, s_r, make_config(), transport=transport, rng=8
        )
        assert not outcome.success
        assert mitm.modified_messages >= 1

    def test_passive_relay_does_not_break_agreement(self):
        mitm = MitmAttacker(group=TEST_GROUP, strategy="passive",
                            relay_delay_s=0.001, rng=2)
        transport = SimulatedTransport(interceptor=mitm.intercept)
        s_m, s_r = matching_seeds(seed=9)
        outcome = run_key_agreement(
            s_m, s_r, make_config(), transport=transport, rng=10
        )
        assert outcome.success  # relay alone learns/changes nothing

    def test_slow_relay_hits_deadline(self):
        mitm = MitmAttacker(group=TEST_GROUP, strategy="passive",
                            relay_delay_s=0.2, rng=3)
        transport = SimulatedTransport(interceptor=mitm.intercept)
        s_m, s_r = matching_seeds(seed=11)
        outcome = run_key_agreement(
            s_m, s_r, make_config(), transport=transport, rng=12
        )
        assert not outcome.success
        assert "deadline" in outcome.failure_reason

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            MitmAttacker(group=TEST_GROUP, strategy="nonsense")


class TestSignalSpoofing:
    def test_spoofed_signal_disrupts_agreement(self, mini_bundle):
        attack = SignalSpoofingAttack(
            pipeline=KeySeedPipeline(mini_bundle),
            agreement_config=make_config(eta=0.05),
            device=default_mobile_devices()[0],
            tag=default_tags()[0],
            environment=default_environments()[0],
        )
        outcome = attack.run(
            victim=default_volunteers()[0],
            attacker_style=default_volunteers()[1],
            n_instances=4,
            rng=13,
        )
        assert outcome.n_trials == 4
        # Spoofed RFID data decorrelates the seeds: every run fails.
        assert outcome.n_successes == 0
        rates = outcome.mismatch_rates()
        assert rates and min(rates) > 0.05
