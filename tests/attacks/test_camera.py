"""Tests for the camera-aided data-recovery attack (SVI-E.2)."""

import numpy as np
import pytest

from repro.attacks import (
    CameraProfile,
    CameraRecoveryAttack,
    IN_SITU_PIXEL8,
    REMOTE_ALPCAM,
)
from repro.core import KeySeedPipeline
from repro.gesture import default_volunteers, sample_gesture
from repro.utils.bits import BitSequence


@pytest.fixture(scope="module")
def trajectory():
    return sample_gesture(default_volunteers()[0], rng=71)


class TestProfiles:
    def test_remote_has_depth_but_latency(self):
        assert REMOTE_ALPCAM.tracks_depth
        assert REMOTE_ALPCAM.processing_latency_s > 1.0
        assert REMOTE_ALPCAM.frame_rate_hz == 260.0

    def test_insitu_is_fast_but_blind_in_depth(self):
        assert not IN_SITU_PIXEL8.tracks_depth
        assert IN_SITU_PIXEL8.processing_latency_s < 0.12


class TestObservation:
    def make_attack(self, mini_bundle, camera):
        return CameraRecoveryAttack(
            pipeline=KeySeedPipeline(mini_bundle), eta=0.1, camera=camera
        )

    def test_positions_tracked_at_frame_rate(self, mini_bundle, trajectory):
        attack = self.make_attack(mini_bundle, REMOTE_ALPCAM)
        t, positions = attack.observe_positions(trajectory, rng=1)
        assert positions.shape == (t.size, 3)
        assert t.size == int(trajectory.total_s * 260)

    def test_3d_tracking_noise_level(self, mini_bundle, trajectory):
        attack = self.make_attack(mini_bundle, REMOTE_ALPCAM)
        t, positions = attack.observe_positions(trajectory, rng=2)
        truth = trajectory.position(t)
        err = positions - truth
        assert 0.001 < err.std() < 0.02

    def test_2d_tracking_destroys_depth(self, mini_bundle, trajectory):
        attack = self.make_attack(mini_bundle, IN_SITU_PIXEL8)
        t, positions = attack.observe_positions(trajectory, rng=3)
        truth = trajectory.position(t)
        depth_err = np.abs(positions[:, 0] - truth[:, 0]).mean()
        lateral_err = np.abs(positions[:, 1] - truth[:, 1]).mean()
        assert depth_err > 5 * lateral_err

    def test_acceleration_estimate_shape(self, mini_bundle, trajectory):
        attack = self.make_attack(mini_bundle, REMOTE_ALPCAM)
        a = attack.estimate_acceleration_matrix(trajectory, rng=4)
        assert a.shape == (200, 3)

    def test_double_differentiation_amplifies_noise(
        self, mini_bundle, trajectory
    ):
        """The physics that defeats the attack: the acceleration estimate
        is far noisier than the victim's IMU-grade measurement."""
        attack = self.make_attack(mini_bundle, REMOTE_ALPCAM)
        a_est = attack.estimate_acceleration_matrix(trajectory, rng=5)
        t = trajectory.motion_onset_s + np.arange(200) / 100.0
        truth = trajectory.acceleration(t)
        residual = np.abs(a_est - truth).mean()
        assert residual > 0.5  # m/s^2-scale error floor


class TestAttackLoop:
    def test_remote_deadline_blocks_even_valid_seeds(
        self, mini_bundle, trajectory
    ):
        attack = CameraRecoveryAttack(
            pipeline=KeySeedPipeline(mini_bundle),
            eta=0.99,  # make the seed check a guaranteed pass
            camera=REMOTE_ALPCAM,
        )
        victim_seed = BitSequence.zeros(
            KeySeedPipeline(mini_bundle).seed_length
        )
        trial = attack.attempt(trajectory, victim_seed, rng=6)
        assert not trial.succeeded
        assert "deadline" in trial.detail

    def test_fast_camera_meets_deadline(self, mini_bundle, trajectory):
        # A hypothetical low-latency high-fidelity camera: the deadline
        # gate passes, so the trial reduces to the seed check.
        fast_camera = CameraProfile(
            name="hypothetical",
            frame_rate_hz=260.0,
            tracking_noise_m=0.004,
            tracks_depth=True,
            processing_latency_s=0.05,
        )
        attack = CameraRecoveryAttack(
            pipeline=KeySeedPipeline(mini_bundle),
            eta=0.99,  # make the seed check a guaranteed pass
            camera=fast_camera,
        )
        victim_seed = BitSequence.zeros(
            KeySeedPipeline(mini_bundle).seed_length
        )
        trial = attack.attempt(trajectory, victim_seed, rng=7)
        assert trial.succeeded

    def test_insitu_tracking_often_fails_outright(self, mini_bundle,
                                                  trajectory):
        """The paper's in-situ result (0/200): noise-dominated 2-D
        tracking frequently cannot even locate the gesture onset."""
        attack = CameraRecoveryAttack(
            pipeline=KeySeedPipeline(mini_bundle),
            eta=0.99,
            camera=IN_SITU_PIXEL8,
        )
        victim_seed = BitSequence.zeros(
            KeySeedPipeline(mini_bundle).seed_length
        )
        trials = [
            attack.attempt(trajectory, victim_seed, rng=100 + i)
            for i in range(5)
        ]
        assert any(not t.succeeded for t in trials)

    def test_run_batch(self, mini_bundle):
        pipeline = KeySeedPipeline(mini_bundle)
        attack = CameraRecoveryAttack(
            pipeline=pipeline, eta=0.1, camera=IN_SITU_PIXEL8
        )
        rng = np.random.default_rng(8)
        trajectories = [
            sample_gesture(default_volunteers()[0], rng=100 + i)
            for i in range(3)
        ]
        seeds = [
            BitSequence.random(pipeline.seed_length, rng) for _ in range(3)
        ]
        outcome = attack.run(trajectories, seeds, rng=9)
        assert outcome.n_trials == 3
