"""Gateway tests: ring-faithful routing, fleet stats, ejection.

Real sockets on loopback, real backends (tiny bundles, pinned seeds),
fast probe cadence so membership transitions land within seconds."""

import time

import pytest

from repro.cluster import (
    REBALANCE_EVENT,
    ShardRing,
    WaveKeyGateway,
    fetch_stats,
)
from repro.errors import TicketRevoked, TicketUnknown
from repro.net import NetClientConfig, WaveKeyNetClient
from repro.net.server import ThreadedWaveKeyTCPServer

from tests.cluster.conftest import Fleet

FAST_PROBES = dict(
    probe_interval_s=0.2,
    probe_timeout_s=1.0,
    probe_fail_threshold=2,
    eject_after_failures=2,
    connect_timeout_s=1.0,
)


def establish(gateway, seed, max_retries=2):
    host, port = gateway.address
    client = WaveKeyNetClient(
        host, port, NetClientConfig(max_retries=max_retries)
    )
    return client.establish(rng_seed=seed)


def wait_for(predicate, timeout_s=8.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestRouting:
    def test_sessions_follow_the_ring(self, fleet):
        with WaveKeyGateway(fleet.addresses, **FAST_PROBES) as gateway:
            reference = ShardRing(fleet.addresses)
            seeds = list(range(20, 32))
            for seed in seeds:
                result = establish(gateway, seed)
                assert result.success, result.failure_reason
            snapshot = gateway.metrics.snapshot()
            expected = {}
            for seed in seeds:
                owner = reference.lookup(f"mobile#{seed}")
                expected[owner] = expected.get(owner, 0) + 1
            for address in fleet.addresses:
                series = f'cluster.sessions.routed{{backend="{address}"}}'
                assert snapshot["counters"].get(series, 0) == (
                    expected.get(address, 0)
                ), "placement must match the reference ring"
            assert gateway.sessions_routed == len(seeds)

    def test_gateway_refuses_when_no_backend_is_reachable(self, fleet):
        # A port from the fleet's range that nothing listens on.
        dead = "127.0.0.1:9"
        gateway = WaveKeyGateway(
            [dead], health_checks=False, connect_timeout_s=1.0
        )
        with gateway:
            result = establish(gateway, seed=5, max_retries=0)
            assert not result.success
            assert "unavailable" in result.failure_reason
            snapshot = gateway.metrics.snapshot()
            assert snapshot["counters"].get("cluster.route.errors", 0) >= 1


class TestAccessRouting:
    """ResumeRequest / RevokeNotice route by ticket identity on the
    ring — not by the Hello-style sender#seed key."""

    def test_resume_and_revoke_through_single_backend_gateway(
        self, tiny_bundle
    ):
        fleet = Fleet(tiny_bundle, 1)
        try:
            with WaveKeyGateway(
                fleet.addresses, health_checks=False, connect_timeout_s=2.0
            ) as gateway:
                host, port = gateway.address
                client = WaveKeyNetClient(
                    host, port, NetClientConfig(max_retries=1)
                )
                result = client.establish(rng_seed=9)
                assert result.success and result.ticket is not None

                with client.open_channel(result.ticket) as channel:
                    assert channel.request("query")["allowed"] is True
                assert client.revoke(result.ticket) is True
                with pytest.raises(TicketRevoked):
                    client.open_channel(result.ticket)

                counters = gateway.metrics.snapshot()["counters"]
                assert counters[
                    'cluster.route.access{kind="resume"}'
                ] == 2
                assert counters[
                    'cluster.route.access{kind="revoke"}'
                ] == 1
        finally:
            fleet.close()

    def test_resume_miss_counts_as_fallback(self, tiny_bundle):
        """A resume the routed backend cannot honour must surface as
        ``cluster.route.resume_fallback`` plus its event — the signal
        operators watch to size replication intervals."""
        from repro.net import ClientTicket

        fleet = Fleet(tiny_bundle, 1)
        backend = fleet.addresses[0]
        try:
            with WaveKeyGateway(
                fleet.addresses, health_checks=False, connect_timeout_s=2.0
            ) as gateway:
                host, port = gateway.address
                client = WaveKeyNetClient(
                    host, port, NetClientConfig(max_retries=1)
                )
                bogus = ClientTicket(
                    ticket_id="00" * 16,
                    resume_secret=b"\x07" * 32,
                    expires_at=0.0,
                    lifetime_s=60.0,
                )
                with pytest.raises(TicketUnknown):
                    client.open_channel(bogus)
                counters = gateway.metrics.snapshot()["counters"]
                assert counters[
                    f'cluster.route.resume_fallback{{backend="{backend}"}}'
                ] == 1
                events = gateway.events.query(
                    kind="cluster_resume_fallback"
                )
                assert events and events[-1].fields["backend"] == backend
                # a revoke miss is the same wire error but NOT a
                # resume fallback — only resumes gate re-establishment
                with pytest.raises(TicketUnknown):
                    client.revoke(bogus)
                counters = gateway.metrics.snapshot()["counters"]
                assert counters[
                    f'cluster.route.resume_fallback{{backend="{backend}"}}'
                ] == 1
        finally:
            fleet.close()

    def test_resume_routing_is_ring_faithful(self, fleet):
        """Across a 3-backend fleet, a resume lands exactly where the
        ring sends ``ticket#<id>``: the issuer answers it, any other
        backend truthfully reports the ticket unknown."""
        reference = ShardRing(fleet.addresses)
        seed = 23
        with WaveKeyGateway(fleet.addresses, **FAST_PROBES) as gateway:
            host, port = gateway.address
            client = WaveKeyNetClient(
                host, port, NetClientConfig(max_retries=1)
            )
            result = client.establish(rng_seed=seed)
            assert result.success and result.ticket is not None
            ticket = result.ticket

            issuer = reference.lookup(f"mobile#{seed}")
            target = reference.lookup(f"ticket#{ticket.ticket_id}")
            if target == issuer:
                with client.open_channel(ticket) as channel:
                    assert channel.request("ping")["pong"] is True
            else:
                # This fleet does not replicate ticket state (see
                # tests/replica for fleets that do): a non-issuer
                # backend answers with the typed unknown error, the
                # client's cue to fall back to full establishment.
                with pytest.raises(TicketUnknown):
                    client.open_channel(ticket)
                fallback_counters = gateway.metrics.snapshot()["counters"]
                assert fallback_counters[
                    f'cluster.route.resume_fallback{{backend="{target}"}}'
                ] == 1
                fallback = client.establish(rng_seed=seed)
                assert fallback.success

            counters = gateway.metrics.snapshot()["counters"]
            assert counters['cluster.route.access{kind="resume"}'] == 1
            routed = counters.get(
                f'cluster.sessions.routed{{backend="{target}"}}', 0
            )
            assert routed >= 1, "resume must dial the ring owner"


class TestFleetStats:
    def test_backend_and_gateway_stats_roles(self, fleet):
        host, port = fleet.backends[0][1].address
        backend_doc = fetch_stats(host, port)
        assert backend_doc["role"] == "backend"
        assert backend_doc["queue_capacity"] > 0
        with WaveKeyGateway(fleet.addresses, **FAST_PROBES) as gateway:
            for seed in (41, 42, 43):
                assert establish(gateway, seed).success
            # One probe cycle populates every backend's scrape.
            assert wait_for(lambda: all(
                state.snapshot is not None
                for state in gateway.backend_states().values()
            ))
            # Scrapes refresh on the probe cadence, and a session can
            # finish faster than one probe interval — wait until the
            # last admission has been folded into the fleet view.
            assert wait_for(
                lambda: fetch_stats(*gateway.address)["snapshot"][
                    "counters"
                ].get("service.admitted", 0) >= 3
            )
            doc = fetch_stats(*gateway.address)
        assert doc["role"] == "gateway"
        assert doc["ring_size"] == 3
        entries = {e["backend"]: e for e in doc["backends"]}
        assert set(entries) == set(fleet.addresses)
        assert all(e["in_ring"] for e in entries.values())
        assert sum(e["share"] for e in entries.values()) == pytest.approx(
            1.0, abs=0.01
        )
        assert sum(e["sessions_routed"] for e in entries.values()) == 3
        merged = doc["snapshot"]
        routed = sum(
            count for series, count in merged["counters"].items()
            if series.startswith("cluster.sessions.routed")
        )
        assert routed == 3
        # The fleet view folds the backends' own service metrics in.
        assert merged["counters"].get("service.admitted", 0) >= 3
        assert any(
            series.startswith("cluster.session_s")
            for series in merged["histograms"]
        )

    def test_threaded_front_end_answers_stats(self, fleet, tiny_bundle):
        access, _ = fleet.backends[0]
        threaded = ThreadedWaveKeyTCPServer(access, "127.0.0.1", 0)
        with threaded:
            doc = fetch_stats(*threaded.address)
        assert doc["role"] == "backend"
        assert "snapshot" in doc


class TestMembership:
    def test_killed_backend_is_ejected_and_traffic_survives(self, fleet):
        with WaveKeyGateway(fleet.addresses, **FAST_PROBES) as gateway:
            assert establish(gateway, seed=7).success
            victim_key = fleet.addresses[0]
            fleet.kill(0)
            assert wait_for(lambda: any(
                e.fields.get("action") == "eject"
                and e.fields.get("backend") == victim_key
                for e in gateway.events.query(kind=REBALANCE_EVENT)
            )), "probes must eject the dead backend"
            doc = fetch_stats(*gateway.address)
            assert doc["ring_size"] == 2
            survivors = [
                e for e in doc["backends"] if e["backend"] != victim_key
            ]
            assert sum(e["share"] for e in survivors) == pytest.approx(
                1.0, abs=0.01
            )
            # Every post-rebalance session must route cleanly.
            before = gateway.metrics.snapshot()["counters"]
            for seed in range(60, 72):
                result = establish(gateway, seed)
                assert result.success, result.failure_reason
            after = gateway.metrics.snapshot()["counters"]
            assert after.get("cluster.route.errors", 0) == before.get(
                "cluster.route.errors", 0
            ), "no routing errors after the ring rebalanced"
            assert after.get(
                f'cluster.sessions.routed{{backend="{victim_key}"}}', 0
            ) == before.get(
                f'cluster.sessions.routed{{backend="{victim_key}"}}', 0
            ), "nothing routes to an ejected backend"

    def test_recovered_backend_rejoins_the_ring(self, fleet):
        with WaveKeyGateway(fleet.addresses, **FAST_PROBES) as gateway:
            victim_key = fleet.addresses[1]
            address = fleet.kill(1)
            assert wait_for(
                lambda: victim_key not in [
                    k for k, s in gateway.backend_states().items()
                    if s.in_ring
                ]
            )
            fleet.revive(1, address)
            assert wait_for(
                lambda: gateway.backend_states()[victim_key].in_ring
            ), "a healthy probe must re-admit the backend"
            joins = [
                e for e in gateway.events.query(kind=REBALANCE_EVENT)
                if e.fields.get("action") == "join"
                and e.fields.get("backend") == victim_key
                and e.fields.get("reason") == "probe-recovered"
            ]
            assert joins, "re-admission must be logged as a rebalance"


class TestSelectionPolicy:
    """Pure selection-logic tests over hand-set backend states."""

    @pytest.fixture
    def gateway(self):
        # Never started: only _select_backend and the ring are used.
        gateway = WaveKeyGateway(
            ["10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1"],
            spill_inflight=2,
            shed_penalty=2,
            health_checks=False,
        )
        for backend in gateway._backends.values():
            gateway._ring.add(backend.key)
            backend.in_ring = True
        return gateway

    def _order(self, gateway, key="mobile#1"):
        return gateway._ring.candidates(key)

    def test_prefers_the_ring_owner(self, gateway):
        first = self._order(gateway)[0]
        chosen = gateway._select_backend("mobile#1", set())
        assert chosen.key == first

    def test_spills_when_owner_is_saturated(self, gateway):
        order = self._order(gateway)
        gateway._backends[order[0]].in_flight = 2  # == spill_inflight
        chosen = gateway._select_backend("mobile#1", set())
        assert chosen.key == order[1]
        counters = gateway.metrics.snapshot()["counters"]
        assert counters.get("cluster.route.spill", 0) == 1

    def test_shed_penalty_steers_away(self, gateway):
        order = self._order(gateway)
        gateway._backends[order[0]].shed_score = 2  # == shed_penalty
        chosen = gateway._select_backend("mobile#1", set())
        assert chosen.key == order[1]

    def test_all_saturated_takes_least_loaded(self, gateway):
        order = self._order(gateway)
        for key, in_flight in zip(order, (4, 2, 3)):
            gateway._backends[key].in_flight = in_flight
        chosen = gateway._select_backend("mobile#1", set())
        assert chosen.key == order[1]

    def test_exclusion_and_exhaustion(self, gateway):
        order = self._order(gateway)
        assert gateway._select_backend(
            "mobile#1", {order[0]}
        ).key == order[1]
        assert gateway._select_backend("mobile#1", set(order)) is None

    def test_ejected_backends_are_never_selected(self, gateway):
        order = self._order(gateway)
        gateway._ring.remove(order[0])
        gateway._backends[order[0]].in_ring = False
        chosen = gateway._select_backend("mobile#1", set())
        assert chosen.key != order[0]
