"""Unit tests for the consistent-hash shard ring."""

import pytest

from repro.cluster import ShardRing, ring_hash
from repro.errors import ConfigurationError

NODES = ["10.0.0.1:7100", "10.0.0.2:7100", "10.0.0.3:7100"]
KEYS = [f"mobile#{seed}" for seed in range(2000)]


class TestPlacement:
    def test_lookup_is_deterministic(self):
        a = ShardRing(NODES)
        b = ShardRing(list(reversed(NODES)))
        for key in KEYS[:200]:
            assert a.lookup(key) == b.lookup(key)

    def test_hash_is_stable_across_instances(self):
        # blake2b, not hash(): placement must survive process restarts.
        assert ring_hash("mobile#7") == ring_hash("mobile#7")
        assert ring_hash("mobile#7") != ring_hash("mobile#8")

    def test_empty_ring_has_no_owner(self):
        ring = ShardRing()
        assert ring.lookup("anything") is None
        assert ring.candidates("anything") == []
        assert len(ring) == 0

    def test_single_node_owns_everything(self):
        ring = ShardRing([NODES[0]])
        assert all(ring.lookup(k) == NODES[0] for k in KEYS[:50])
        assert ring.share(NODES[0]) == pytest.approx(1.0)

    def test_balance_within_tolerance(self):
        ring = ShardRing(NODES, replicas=64)
        counts = {node: 0 for node in NODES}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        # Every node should hold a non-trivial slice; vnode hashing
        # keeps the spread well away from degenerate.
        for node in NODES:
            assert counts[node] > len(KEYS) * 0.15

    def test_shares_sum_to_one_and_predict_load(self):
        ring = ShardRing(NODES)
        shares = {node: ring.share(node) for node in NODES}
        assert sum(shares.values()) == pytest.approx(1.0)
        counts = {node: 0 for node in NODES}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        for node in NODES:
            assert counts[node] / len(KEYS) == pytest.approx(
                shares[node], abs=0.05
            )


class TestMembershipChanges:
    def test_removal_only_remaps_the_lost_nodes_keys(self):
        ring = ShardRing(NODES)
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove(NODES[1])
        moved = 0
        for key in KEYS:
            after = ring.lookup(key)
            if before[key] == NODES[1]:
                assert after != NODES[1]
            else:
                assert after == before[key], (
                    "a key not owned by the removed node must not move"
                )
                continue
            moved += 1
        # ~1/3 of the keyspace moves, never more.
        assert moved == sum(1 for v in before.values() if v == NODES[1])

    def test_re_adding_restores_exact_placement(self):
        ring = ShardRing(NODES)
        before = {key: ring.lookup(key) for key in KEYS[:500]}
        ring.remove(NODES[2])
        ring.add(NODES[2])
        assert {key: ring.lookup(key) for key in KEYS[:500]} == before

    def test_candidates_agree_with_post_removal_owner(self):
        ring = ShardRing(NODES)
        for key in KEYS[:100]:
            first, second = ring.candidates(key)[:2]
            assert first == ring.lookup(key)
            ring.remove(first)
            assert ring.lookup(key) == second
            ring.add(first)

    def test_candidates_list_each_node_once(self):
        ring = ShardRing(NODES)
        for key in KEYS[:50]:
            candidates = ring.candidates(key)
            assert sorted(candidates) == sorted(NODES)

    def test_add_is_idempotent_remove_is_tolerant(self):
        ring = ShardRing(NODES)
        ring.add(NODES[0])
        assert len(ring) == 3
        ring.remove("10.9.9.9:1")  # never a member: no-op
        assert len(ring) == 3
        assert NODES[0] in ring
        ring.remove(NODES[0])
        assert NODES[0] not in ring

    def test_share_of_absent_node_is_zero(self):
        ring = ShardRing(NODES)
        assert ring.share("10.9.9.9:1") == 0.0


class TestValidation:
    def test_replicas_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ShardRing(replicas=0)

    def test_node_name_must_be_non_empty(self):
        with pytest.raises(ConfigurationError):
            ShardRing([""])
