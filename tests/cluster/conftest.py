"""Fixtures for gateway tests: a small in-process fleet.

Backends are real :class:`WaveKeyTCPServer` front ends over tiny
untrained bundles with pinned seeds (agreement always succeeds,
deterministically); the gateway in front of them probes fast so
membership changes resolve within test timeouts."""

import numpy as np
import pytest

from repro.core.models import (
    WaveKeyModelBundle,
    build_decoder,
    build_imu_encoder,
    build_rf_encoder,
)
from repro.net import WaveKeyTCPServer
from repro.service import ServiceConfig, WaveKeyAccessServer
from repro.utils.bits import BitSequence

from tests.net.conftest import fixed_acquire


@pytest.fixture(scope="module")
def tiny_bundle():
    return WaveKeyModelBundle(
        imu_encoder=build_imu_encoder(6, rng=0),
        rf_encoder=build_rf_encoder(6, rng=1),
        decoder=build_decoder(6, rng=2),
        n_bins=8,
        eta=0.2,
    )


class Fleet:
    """N started backends plus their addresses, with kill/revive."""

    def __init__(self, bundle, n, **config_kwargs):
        self.bundle = bundle
        self.backends = []  # (access, tcp) pairs, index-stable
        config_kwargs.setdefault("workers", 1)
        self._config_kwargs = config_kwargs
        for _ in range(n):
            self.backends.append(self._spawn("127.0.0.1", 0))

    def _spawn(self, host, port):
        access = WaveKeyAccessServer(
            self.bundle,
            ServiceConfig(**self._config_kwargs),
            acquire_fn=fixed_acquire,
        )
        access.start()
        seed = BitSequence.random(32, np.random.default_rng(7))
        access._imu_batcher.batch_fn = lambda items: [seed for _ in items]
        access._rf_batcher.batch_fn = lambda items: [seed for _ in items]
        tcp = WaveKeyTCPServer(access, host, port)
        tcp.start()
        return access, tcp

    @property
    def addresses(self):
        return [
            f"{tcp.address[0]}:{tcp.address[1]}"
            for _, tcp in self.backends
        ]

    def kill(self, index):
        access, tcp = self.backends[index]
        address = tcp.address
        tcp.stop()
        access.stop()
        self.backends[index] = None
        return address

    def revive(self, index, address):
        self.backends[index] = self._spawn(address[0], address[1])

    def close(self):
        for pair in self.backends:
            if pair is None:
                continue
            access, tcp = pair
            tcp.stop()
            access.stop()


@pytest.fixture
def fleet(tiny_bundle):
    fleet = Fleet(tiny_bundle, 3)
    yield fleet
    fleet.close()
