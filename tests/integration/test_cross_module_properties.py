"""Cross-module property tests (hypothesis) on the protocol contract.

These run on small synthetic seeds — no trained model needed — and pin
the protocol's central invariant: agreement success is *exactly*
determined by the seed mismatch count relative to the ECC radius, and a
successful agreement always ends with byte-identical keys on both
sides.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto import generate_dh_group
from repro.protocol import KeyAgreementConfig, run_key_agreement
from repro.utils.bits import BitSequence

TEST_GROUP = generate_dh_group(64, rng=1234)
CONFIG = KeyAgreementConfig(key_length_bits=64, eta=0.12, group=TEST_GROUP)
SEED_LENGTH = 24
RADIUS = CONFIG.tolerated_seed_mismatches(SEED_LENGTH)  # floor(.12*24)=2


@given(
    flips=st.integers(min_value=0, max_value=SEED_LENGTH),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_agreement_success_iff_within_radius(flips, seed):
    rng = np.random.default_rng(seed)
    s_m = BitSequence.random(SEED_LENGTH, rng)
    noisy = s_m.array.copy()
    if flips:
        idx = rng.choice(SEED_LENGTH, size=flips, replace=False)
        noisy[idx] ^= 1
    s_r = BitSequence(noisy)
    outcome = run_key_agreement(s_m, s_r, CONFIG, rng=seed)
    if flips <= RADIUS:
        assert outcome.success, (
            f"{flips} flips within radius {RADIUS} must succeed"
        )
        assert outcome.keys_match
        assert len(outcome.mobile_key) == 64
    else:
        # Beyond the radius the RS decoder fails (or, with negligible
        # probability, miscorrects — which the HMAC then catches): the
        # run must never report success with mismatched keys.
        if outcome.success:
            assert outcome.keys_match
        else:
            assert outcome.mobile_key is None


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_established_keys_pass_quick_uniformity_check(seed):
    rng = np.random.default_rng(seed)
    s = BitSequence.random(SEED_LENGTH, rng)
    outcome = run_key_agreement(s, s, CONFIG, rng=seed)
    assert outcome.success
    key = outcome.mobile_key
    # 64 coin flips land in [10, 54] ones except with p ~ 2e-9.
    assert 10 <= key.popcount() <= 54
