"""The example scripts must at least parse and expose a main()."""

import ast
import os

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "examples",
)

EXAMPLES = [
    "quickstart.py",
    "lineup_service.py",
    "access_control_audit.py",
    "attack_gauntlet.py",
    "service_rush_hour.py",
]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_parses_and_has_main(name):
    path = os.path.join(EXAMPLES_DIR, name)
    with open(path) as fh:
        tree = ast.parse(fh.read(), filename=name)
    functions = {
        node.name for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions
    # Every example is documented.
    assert ast.get_docstring(tree)
