"""End-to-end integration tests against the shipped pretrained bundle.

These assert the *converged* behaviour the paper reports: high benign
key-establishment success, attacker seeds far outside the ECC radius,
and protocol-level attack failure.  They are skipped when the pretrained
artifact has not been built (``scripts/train_default_bundle.py``).
"""

import numpy as np
import pytest

from repro.attacks import Eavesdropper, GestureMimicryAttack, MitmAttacker
from repro.core import KeySeedPipeline, WaveKeySystem
from repro.gesture import default_volunteers, sample_gesture
from repro.imu import default_mobile_devices
from repro.protocol import KeyAgreementConfig, SimulatedTransport
from repro.rfid import default_environments, default_tags
from repro.utils.rng import child_rng


@pytest.fixture(scope="module")
def system(default_bundle):
    config = KeyAgreementConfig(
        key_length_bits=256, eta=default_bundle.eta
    )
    return WaveKeySystem(default_bundle, agreement_config=config)


class TestBenignOperation:
    def test_benign_success_rate_high(self, system):
        outcomes = [
            system.establish_key(
                volunteer=default_volunteers()[i % 6],
                rng=child_rng(42, i),
            )
            for i in range(12)
        ]
        rate = np.mean([o.success for o in outcomes])
        # Absolute level is substrate-limited (see EXPERIMENTS.md); the
        # assertion pins "clearly above chance" rather than the paper's
        # testbed 99%.
        assert rate >= 0.4, f"benign success only {rate:.2f}"
        successes = [o for o in outcomes if o.success]
        assert successes
        for o in successes:
            assert len(o.key) == 256
            assert o.seed_mismatch_rate <= system.bundle.eta

    def test_keys_unique_across_sessions(self, system):
        keys = []
        for i in range(6):
            result = system.establish_key(rng=child_rng(77, i))
            if result.success:
                keys.append(result.key.to_bytes())
        assert len(keys) == len(set(keys))

    def test_dynamic_environment_still_works(self, system):
        outcomes = [
            system.establish_key(
                volunteer=default_volunteers()[0], dynamic=True,
                rng=child_rng(88, i),
            ).success
            for i in range(8)
        ]
        assert np.mean(outcomes) >= 0.2


class TestConvergedSecurity:
    def test_mimicry_stays_outside_ecc_radius(self, default_bundle):
        attack = GestureMimicryAttack(
            pipeline=KeySeedPipeline(default_bundle),
            eta=default_bundle.eta,
            device=default_mobile_devices()[3],
            tag=default_tags()[0],
            environment=default_environments()[0],
        )
        outcome = attack.run(
            victims=default_volunteers()[:2],
            imitators=default_volunteers()[:3],
            gestures_per_victim=2,
            rng=99,
        )
        assert outcome.n_successes == 0
        assert min(outcome.mismatch_rates()) > 0.9 * default_bundle.eta

    def test_mitm_always_detected(self, system):
        trajectory = sample_gesture(default_volunteers()[0], rng=7)
        seed_m, seed_r = system.acquire(trajectory, rng=8)
        mitm = MitmAttacker(
            group=system.agreement_config.group,
            strategy="substitute_ciphertexts",
            rng=9,
        )
        result = system.agree_on_seeds(
            seed_m, seed_r,
            transport=SimulatedTransport(interceptor=mitm.intercept),
            rng=10,
        )
        assert not result.success

    def test_eavesdropper_learns_no_key_bits(self, system):
        eve = Eavesdropper(group=system.agreement_config.group)
        trajectory = sample_gesture(default_volunteers()[1], rng=11)
        seed_m, seed_r = system.acquire(trajectory, rng=12)
        result = system.agree_on_seeds(
            seed_m, seed_r,
            transport=SimulatedTransport(taps=[eve.tap]),
            rng=13,
        )
        if not result.success:
            pytest.skip("benign run failed on this draw")
        forged = eve.attempt_key_recovery(
            segment_bits=system.agreement_config.segment_bits(len(seed_m)),
            rng=14,
        )
        overlap = min(len(forged), len(result.key))
        rate = forged[:overlap].mismatch_rate(result.key[:overlap])
        assert 0.3 < rate < 0.7
