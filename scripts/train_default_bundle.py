#!/usr/bin/env python
"""Build the pretrained model bundle shipped with the package.

Reproduces the paper's offline phase (SIV-E + SVI-C.2):

1. generate a cross-modal dataset over all volunteers / devices / tags /
   environments (a scaled version of the paper's 14,400-sample D);
2. jointly train IMU-En, RF-En, De with the Eq. 3 loss, with a step
   learning-rate schedule;
3. calibrate the ECC rate ``eta`` at the 99th percentile of benign seed
   mismatch on a held-out split;
4. save the bundle into ``src/repro/assets/default_bundle``.

Run:  python scripts/train_default_bundle.py [--fast]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.core.hyperparams import calibrate_eta
from repro.core.pipeline import KeySeedPipeline
from repro.core.pretrained import default_bundle_dir
from repro.core.training import (
    JointTrainingConfig,
    continue_training,
    train_wavekey_models,
)
from repro.datasets import DatasetConfig, generate_dataset

LATENT_WIDTH = 12  # the paper's pruned l_f
N_BINS = 8


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="small dataset + short schedule (CI-sized sanity run)",
    )
    parser.add_argument("--out", default=default_bundle_dir())
    parser.add_argument("--seed", type=int, default=20240707)
    args = parser.parse_args()

    if args.fast:
        data_cfg = DatasetConfig(
            gestures_per_device=2, windows_per_gesture=6,
            gesture_active_s=5.0,
        )
        schedule = [(40, 3e-3), (20, 8e-4)]
    else:
        # Volume over epochs: cross-modal alignment overfits quickly on
        # small gesture sets (it can memorize pairs), so the production
        # run favours a large dataset and a short three-stage schedule.
        data_cfg = DatasetConfig(
            gestures_per_device=16, windows_per_gesture=18,
            gesture_active_s=7.0,
            # Table II evaluates across user positions; the encoders can
            # only generalize over geometries they saw during training.
            randomize_distance_m=(1.0, 9.0),
            randomize_azimuth_deg=(-60.0, 60.0),
        )
        schedule = [(60, 3e-3), (35, 1e-3), (15, 3e-4)]

    t0 = time.time()
    print("[1/4] generating dataset ...", flush=True)
    dataset = generate_dataset(data_cfg, rng=args.seed)
    train_set, val_set = dataset.split(0.85, rng=args.seed + 1)
    print(
        f"      {len(dataset)} samples ({len(train_set)} train / "
        f"{len(val_set)} val) in {time.time() - t0:.0f}s",
        flush=True,
    )

    print("[2/4] joint training ...", flush=True)
    epochs0, lr0 = schedule[0]
    config = JointTrainingConfig(
        latent_width=LATENT_WIDTH,
        epochs=epochs0,
        batch_size=128,
        learning_rate=lr0,
        reconstruction_weight=0.005,
        weight_decay=5e-5,
        augment_noise=0.03,
        decorrelation_weight=1.0,
        n_bins=N_BINS,
    )
    result = train_wavekey_models(train_set, config, rng=args.seed + 2)
    bundle = result.bundle
    for stage, (epochs, lr) in enumerate(schedule[1:], start=1):
        stage_config = JointTrainingConfig(
            latent_width=LATENT_WIDTH,
            epochs=epochs,
            batch_size=128,
            learning_rate=lr,
            reconstruction_weight=0.005,
            weight_decay=5e-5,
            augment_noise=0.03,
            decorrelation_weight=1.0,
            n_bins=N_BINS,
        )
        result = continue_training(
            bundle.imu_encoder,
            bundle.rf_encoder,
            bundle.decoder,
            train_set,
            stage_config,
            rng=args.seed + 2 + stage,
        )
        print(
            f"      stage {stage}: align={result.alignment_history[-1]:.4f} "
            f"({time.time() - t0:.0f}s)",
            flush=True,
        )

    print("[3/4] calibrating eta on the held-out split ...", flush=True)
    pipeline = KeySeedPipeline(bundle)
    calibration = calibrate_eta(
        pipeline, val_set.a_matrices(), val_set.r_matrices()
    )
    bundle.eta = calibration.eta
    rates = calibration.mismatch_rates
    print(
        f"      mismatch mean={rates.mean():.3f} "
        f"p99={np.percentile(rates, 99):.3f} -> eta={bundle.eta:.4f} "
        f"(expected benign success "
        f"{calibration.expected_benign_success:.3f})",
        flush=True,
    )

    print(f"[4/4] saving to {args.out}", flush=True)
    os.makedirs(args.out, exist_ok=True)
    bundle.save(args.out)
    print(f"done in {time.time() - t0:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
