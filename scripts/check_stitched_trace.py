#!/usr/bin/env python
"""CI assertion for the obs-smoke job: one stitched cross-process trace.

Reads a ``repro obs trace --stitch`` rendering and a Prometheus
exposition, then checks the tentpole acceptance criteria:

1. exactly ONE trace id has spans from all three services — client,
   gateway, and at least one backend — i.e. the wire-propagated
   context joined one session's spans across three processes;
2. the fleet exposition carries at least one tail exemplar
   (``# {trace_id="..."}``) and the resumed session's exemplar
   resolves to that stitched trace.

Exit code 0 on success; a diagnostic plus exit 1 otherwise.

Usage: check_stitched_trace.py STITCHED_TXT FLEET_PROM
"""

from __future__ import annotations

import re
import sys


def cross_process_traces(text: str) -> list:
    """Trace ids whose rendered block names all three services."""
    blocks = re.split(r"^trace (\S+)$", text, flags=re.M)
    full = []
    for tid, body in zip(blocks[1::2], blocks[2::2]):
        if ("@client" in body and "@gateway" in body
                and "@backend:" in body):
            full.append(tid)
    return full


def exemplar_trace_ids(prom: str) -> list:
    return re.findall(r'# \{trace_id="([^"]+)"\}', prom)


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    stitched = open(argv[1], encoding="utf-8").read()
    prom = open(argv[2], encoding="utf-8").read()

    full = cross_process_traces(stitched)
    print(f"traces spanning client+gateway+backend: {full}")
    if len(full) != 1:
        print(
            f"::error::expected exactly one cross-process trace, "
            f"found {len(full)}",
            file=sys.stderr,
        )
        return 1

    exemplars = sorted(set(exemplar_trace_ids(prom)))
    print(f"tail exemplar trace ids in fleet exposition: {exemplars}")
    if not exemplars:
        print("::error::no tail exemplars in fleet exposition",
              file=sys.stderr)
        return 1
    if full[0] not in exemplars:
        print(
            f"::error::exemplar trace ids {exemplars} do not include "
            f"the stitched cross-process trace {full[0]}",
            file=sys.stderr,
        )
        return 1
    print(f"ok: trace {full[0]} stitched across three processes and "
          f"resolvable from its latency exemplar")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
