#!/usr/bin/env python
"""Spawn a local WaveKey fleet: N backend servers plus one gateway.

Each backend is a ``repro serve --listen`` subprocess on a free port;
once every backend has published its address the gateway comes up in
front of them with ``repro cluster serve``.  The fleet runs until
``--duration`` elapses or SIGINT, then children are torn down in
reverse order (gateway first, so in-flight sessions drain to backends
that still exist).

Run:  python scripts/run_cluster.py [--backends 3] [--port-file F]
      repro loadgen --connect $(cat F) --sessions 16
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _repro_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _wait_for_port_file(path: str, timeout_s: float, proc) -> str:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"child exited with {proc.returncode} before publishing "
                f"its address (see its output above)"
            )
        try:
            with open(path, "r", encoding="utf-8") as fh:
                bound = fh.read().strip()
            if bound:
                return bound
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    raise RuntimeError(f"no address in {path} after {timeout_s}s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backends", type=int, default=3,
                        help="backend server processes to spawn")
    parser.add_argument("--workers", type=int, default=2,
                        help="protocol workers per backend")
    parser.add_argument("--port-file", default=None,
                        help="publish the gateway's HOST:PORT here")
    parser.add_argument("--duration", type=float, default=0.0,
                        help="seconds to run (0 = until SIGINT)")
    parser.add_argument("--startup-timeout", type=float, default=60.0,
                        help="seconds to wait for each child's address")
    parser.add_argument("--telemetry", action="store_true",
                        help="run every process with --telemetry so "
                             "distributed traces can be stitched with "
                             "`repro obs trace --stitch`")
    parser.add_argument("--replicate", action="store_true",
                        help="replicate ticket state: backends run "
                             "--replicate and the gateway ferries "
                             "entries every --replication-interval")
    parser.add_argument("--replication-interval", type=float, default=0.5,
                        help="gateway ferry cadence in seconds "
                             "(with --replicate)")
    args = parser.parse_args()
    if args.backends < 1:
        parser.error("--backends must be >= 1")

    env = _repro_env()
    children = []
    state_dir = tempfile.mkdtemp(prefix="wavekey-cluster-")
    try:
        addresses = []
        for index in range(args.backends):
            port_file = os.path.join(state_dir, f"backend-{index}.addr")
            backend_cmd = [sys.executable, "-m", "repro", "serve",
                           "--listen", "127.0.0.1:0",
                           "--port-file", port_file,
                           "--sessions", "0",
                           "--workers", str(args.workers)]
            if args.telemetry:
                backend_cmd.append("--telemetry")
            if args.replicate:
                backend_cmd.append("--replicate")
            proc = subprocess.Popen(backend_cmd, env=env, cwd=REPO_ROOT)
            children.append(proc)
            bound = _wait_for_port_file(
                port_file, args.startup_timeout, proc
            )
            addresses.append(bound)
            print(f"backend[{index}] on {bound}", flush=True)

        gateway_port_file = args.port_file or os.path.join(
            state_dir, "gateway.addr"
        )
        gateway_cmd = [sys.executable, "-m", "repro", "cluster", "serve",
                       "--listen", "127.0.0.1:0",
                       "--port-file", gateway_port_file]
        if args.telemetry:
            gateway_cmd.append("--telemetry")
        if args.replicate:
            gateway_cmd += ["--replication-interval",
                            str(args.replication_interval)]
        for bound in addresses:
            gateway_cmd += ["--backend", bound]
        gateway = subprocess.Popen(gateway_cmd, env=env, cwd=REPO_ROOT)
        children.append(gateway)
        bound = _wait_for_port_file(
            gateway_port_file, args.startup_timeout, gateway
        )
        print(f"gateway on {bound} over {len(addresses)} backends",
              flush=True)

        deadline = (
            time.monotonic() + args.duration if args.duration > 0 else None
        )
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                break
            dead = [p for p in children if p.poll() is not None]
            if dead:
                print("a fleet process exited; shutting down",
                      file=sys.stderr)
                return 1
            time.sleep(0.2)
        return 0
    except KeyboardInterrupt:
        return 0
    finally:
        # Gateway first: routing stops before its backends disappear.
        for proc in reversed(children):
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
        for proc in reversed(children):
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
