#!/usr/bin/env python
"""Replication smoke: a backend dies and its tickets keep working.

Scenario (all in one process so the fleet survives a deliberate kill,
unlike ``run_cluster.py`` whose child monitor tears everything down):

1. three replicating backends come up behind a gateway with the
   replication ferry on;
2. a client establishes through the gateway and is granted a ticket
   on whichever backend the session hashed to (the *issuer*);
3. once the ferry has spread the grant to every backend, the issuer
   is killed and ejected from the ring;
4. the client resumes through the gateway — the session lands on a
   surviving backend and must succeed *without* re-establishment;
5. the client revokes through the gateway, and every surviving
   backend must then reject the ticket as revoked.

Exit 0 only if every step held.  ``--out DIR`` writes the merged
fleet ``replica.*`` / ``cluster.replica.*`` metrics as JSON for the
CI artifact.

Run:  PYTHONPATH=src python scripts/replica_smoke.py --out artifacts/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

from repro.access.store import KeyStore  # noqa: E402
from repro.cluster.gateway import WaveKeyGateway  # noqa: E402
from repro.core.pretrained import load_default_bundle  # noqa: E402
from repro.errors import TicketRevoked, WaveKeyError  # noqa: E402
from repro.net.client import WaveKeyNetClient  # noqa: E402
from repro.net.server import WaveKeyTCPServer  # noqa: E402
from repro.replica import Replicator  # noqa: E402
from repro.service import ServiceConfig, WaveKeyAccessServer  # noqa: E402


def _await(check, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        result = check()
        if result:
            return result
        time.sleep(0.05)
    raise RuntimeError(f"timed out after {timeout_s}s waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="directory for the merged replica metrics "
                             "artifact")
    parser.add_argument("--backends", type=int, default=3)
    parser.add_argument("--ferry-interval", type=float, default=0.2,
                        help="gateway replication-ferry cadence")
    args = parser.parse_args()

    bundle = load_default_bundle()
    fleet = []  # (access, server, replicator)
    gateway = None
    killed = None
    try:
        for _ in range(args.backends):
            access = WaveKeyAccessServer(
                bundle, ServiceConfig(workers=2)
            ).start()
            store = KeyStore(ttl_s=600.0, metrics=access.metrics)
            # Static peers stay empty: the gateway ferry is the only
            # replication path, which is exactly what this smoke tests.
            replicator = Replicator(store, anti_entropy_interval_s=30.0)
            server = WaveKeyTCPServer(
                access, "127.0.0.1", 0,
                key_store=store, replicator=replicator,
            ).start()
            fleet.append((access, server, replicator))
        addresses = [
            f"{server.address[0]}:{server.address[1]}"
            for _, server, _ in fleet
        ]
        gateway = WaveKeyGateway(
            addresses,
            probe_interval_s=0.2,
            replication_interval_s=args.ferry_interval,
        ).start()
        print(f"fleet: {addresses} behind "
              f"{gateway.address[0]}:{gateway.address[1]}", flush=True)

        client = WaveKeyNetClient(*gateway.address)
        # Agreement verdicts are stochastic: retry seeds until one
        # establishment succeeds and a ticket is granted.
        ticket = None
        for seed in range(7, 27):
            result = client.establish(rng_seed=seed)
            if result.success and result.ticket is not None:
                ticket = result.ticket
                break
        if ticket is None:
            print("::error::no establishment succeeded in 20 seeds")
            return 1
        print(f"granted ticket {ticket.ticket_id}", flush=True)

        issuer = next(
            i for i, (_, server, _) in enumerate(fleet)
            if server.key_store.peek(ticket.ticket_id) is not None
        )
        _await(
            lambda: all(
                server.key_store.peek(ticket.ticket_id) is not None
                for _, server, _ in fleet
            ),
            timeout_s=10.0,
            what="the ferry to spread the grant to every backend",
        )
        print(f"grant replicated to all {len(fleet)} backends "
              f"(issuer: backend[{issuer}])", flush=True)

        killed = issuer
        fleet[issuer][1].stop()
        _await(
            lambda: not any(
                b.in_ring
                for b in gateway.backend_states().values()
                if b.key == addresses[issuer]
            ),
            timeout_s=10.0,
            what="the gateway to eject the killed issuer",
        )
        print(f"backend[{issuer}] killed and ejected", flush=True)

        # The resume must land on a survivor and succeed — open_channel
        # raises on any failure, so reaching echo IS the assertion that
        # no re-establishment happened.
        channel = client.open_channel(ticket)
        channel.request("query", target="door")
        channel.close()
        print("resume via gateway succeeded on a surviving backend",
              flush=True)

        client.revoke(ticket)
        for i, (_, server, _) in enumerate(fleet):
            if i == killed:
                continue
            def rejected(srv=server):
                try:
                    srv.key_store.resume(ticket.ticket_id)
                except TicketRevoked:
                    return True
                except WaveKeyError:
                    return False
                return False
            _await(
                lambda check=rejected: check(),
                timeout_s=10.0,
                what=f"backend[{i}] to reject the revoked ticket",
            )
        print("revocation rejected by every surviving backend", flush=True)

        if args.out:
            os.makedirs(args.out, exist_ok=True)
            merged = gateway.fleet_snapshot()
            replica_counters = {
                name: value
                for name, value in merged.get("counters", {}).items()
                if "replica" in name
            }
            artifact = {
                "counters": replica_counters,
                "gauges": {
                    name: value
                    for name, value in merged.get("gauges", {}).items()
                    if "replica" in name
                },
                "replication": gateway.fleet_document().get("replication"),
            }
            path = os.path.join(args.out, "replica-metrics.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(artifact, fh, indent=2, default=str)
            print(f"replica metrics -> {path}", flush=True)
            if not replica_counters:
                print("::error::no replica.* counters in the fleet "
                      "snapshot")
                return 1
        print("replica smoke OK", flush=True)
        return 0
    finally:
        if gateway is not None:
            gateway.stop()
        for i, (access, server, _) in enumerate(fleet):
            if i != killed:
                server.stop()
            access.stop()


if __name__ == "__main__":
    sys.exit(main())
