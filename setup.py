"""Setup shim: this offline environment lacks the `wheel` package, so
PEP 660 editable installs fail; `python setup.py develop` (or
`pip install -e . --no-build-isolation` once wheel is present) works."""
from setuptools import setup

setup()
